//! ParBlockchain's execution phase (§IV-C): executor nodes running the
//! three concurrent procedures.
//!
//! * **Algorithm 1** — execute the transactions this node is an agent for,
//!   following the dependency graph: a transaction runs once all its
//!   predecessors are locally executed or committed.
//! * **Algorithm 2** — buffer execution results and multicast a COMMIT
//!   message when a result is needed by another application's agents
//!   (a successor across the application cut), or when the node's share
//!   of the block is finished.
//! * **Algorithm 3** — collect COMMIT messages, and once τ(A) matching
//!   results arrive for a transaction, apply them to the blockchain
//!   state.
//!
//! The same node implementation serves *non-executor* peers (agents of no
//! application): they only run Algorithm 3.
//!
//! # The execution pipeline (DESIGN.md §7)
//!
//! Up to [`ClusterSpec::exec_pipeline_depth`](crate::ClusterSpec) blocks
//! are **in flight** at once over a multi-version state
//! ([`parblock_ledger::MvccState`]), implementing §III-A's multi-version
//! adaptation: every applied write creates a version stamped with the
//! writer's log position `(block, seq)`, and a transaction's snapshot
//! reads the greatest version *below its own position*. A block-`n+1`
//! transaction whose keys are untouched by still-pending block-`n`
//! writers starts immediately; conflicting ones wait on cross-block
//! dependency edges from the retained conflict index
//! ([`parblock_depgraph::CrossBlockIndex`]). Blocks may finish committing
//! out of order, but are appended to the ledger strictly in order (the
//! commit watermark), below which old versions are garbage-collected.
//! Depth 1 reproduces the paper's block-at-a-time barrier exactly.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::never;
use parblock_crypto::Signature;
use parblock_depgraph::{CrossBlockIndex, DependencyGraph, ReadyTracker};
use parblock_ledger::{Durability, Ledger, MvccState, Version};
use parblock_net::Endpoint;
use parblock_types::{BlockNumber, ExecutionMode, Hash32, Key, NodeId, SeqNo, TxId, Value};

use crate::msg::{BlockBundle, CommitMsg, ExecResult, Msg};
use crate::pool::{Completion, ExecPool, InlineQueue, SnapshotReader, WorkItem};
use crate::quorum::NewBlockQuorum;
use crate::shared::Shared;

/// Stop-flag poll granularity.
const IDLE_TICK: Duration = Duration::from_micros(500);

/// Hybrid mode's switch point, in dependency-graph edges per
/// transaction. Dense blocks (above) run the pessimistic scheduler —
/// speculation there mostly aborts and re-executes; sparse blocks
/// (at or below) run the optimistic engine. The graph is part of the
/// ordered NEWBLOCK bundle, so every replica makes the same choice.
const HYBRID_DENSITY_THRESHOLD: f64 = 0.75;

/// The hybrid engine choice for one block (see
/// [`HYBRID_DENSITY_THRESHOLD`]).
fn hybrid_picks_optimistic(graph: &DependencyGraph) -> bool {
    let n = graph.len().max(1);
    (graph.edge_count() as f64 / n as f64) <= HYBRID_DENSITY_THRESHOLD
}

/// Per-block scheduling engine (DESIGN.md §11): the paper's
/// dependency-graph scheduler, or the Block-STM speculate / validate /
/// re-execute loop. Chosen once per block at start.
enum Engine {
    Pessimistic,
    Optimistic(Box<OptState>),
}

/// One incarnation's recorded read set: every declared read key with
/// the `(value, version)` its snapshot observed (`None` = no version
/// strictly below the reader's position existed).
type RecordedReads = Vec<(Key, Option<(Value, Version)>)>;

/// Block-STM bookkeeping for one optimistic block, indexed by position.
/// Only the node's own (`we`) positions carry live entries; foreign
/// positions resolve through COMMIT votes exactly as in the pessimistic
/// engine.
struct OptState {
    /// Execution attempt counter per position: completions carrying a
    /// stale incarnation are dropped.
    incarnation: Vec<u32>,
    /// Whether the **current** incarnation has finished executing
    /// (speculatively — not yet validated).
    exec_done: Vec<bool>,
    /// The current incarnation's result, held until validation.
    pending: Vec<Option<ExecResult>>,
    /// The recorded read set of the current incarnation. Validation
    /// re-resolves each read and compares.
    reads: Vec<RecordedReads>,
    /// Keys the current incarnation wrote into the speculative layer
    /// (empty for aborts), for exact retraction.
    spec_keys: Vec<Vec<Key>>,
    /// Positions whose dependency-graph predecessors (in-block and
    /// cross-block) are all final — the tracker's readiness, which under
    /// this engine gates **validation** instead of dispatch. A ready
    /// position's declared reads resolve to final values, so its check
    /// against the recorded read set is authoritative.
    validate_ready: Vec<bool>,
    /// Estimate markers: key → position of an aborted writer whose
    /// re-execution is pending. A lower-positioned marker defers a
    /// reader's re-dispatch instead of letting it speculate against the
    /// retracted hole — the Block-STM livelock guard for hot keys.
    estimates: HashMap<Key, u32>,
    /// Writer position → readers whose (re-)dispatch waits on its next
    /// completed incarnation (set aside by an estimate hit).
    deferred: HashMap<u32, Vec<u32>>,
    /// Reverse read index: key → positions whose recorded reads include
    /// it (so a write triggers rechecks of exactly its readers).
    readers: HashMap<Key, BTreeSet<u32>>,
}

impl OptState {
    fn new(n: usize) -> Self {
        OptState {
            incarnation: vec![0; n],
            exec_done: vec![false; n],
            pending: vec![None; n],
            reads: vec![Vec::new(); n],
            spec_keys: vec![Vec::new(); n],
            validate_ready: vec![false; n],
            estimates: HashMap::new(),
            deferred: HashMap::new(),
            readers: HashMap::new(),
        }
    }
}

/// A deferred consequence of applying writes, processed by the
/// validation pump in FIFO order (queued rather than recursed so the
/// vote → commit → recheck chain stays iterative and deterministic).
enum OptEvent {
    /// Writes on `keys` were applied (speculatively or committed) or
    /// retracted at `version`: re-validate the recorded reads of
    /// higher-positioned readers of those keys.
    Recheck { version: Version, keys: Vec<Key> },
}

/// Where this executor's contract executions run: a thread pool under
/// the free-running runner, a virtual-time inline queue under the
/// deterministic scheduler (DESIGN.md §10).
pub(crate) enum ExecBackend {
    Pool(ExecPool),
    Inline(InlineQueue),
}

/// Per-block execution state on one executor.
struct BlockRun {
    bundle: Arc<BlockBundle>,
    tracker: ReadyTracker,
    /// `We`: positions this node executes (it is an agent of their app).
    we: Vec<bool>,
    /// Result votes per position: `(agent, result)`, deduplicated per
    /// agent. Our own result is voted like any other agent's.
    votes: HashMap<SeqNo, Vec<(NodeId, ExecResult)>>,
    /// Locally executed positions (the set `Xe`).
    executed: Vec<bool>,
    /// Committed positions (the set `Ce`).
    committed: Vec<bool>,
    committed_count: usize,
    /// Algorithm 2 buffer: executed results not yet multicast.
    xe_buffer: Vec<(SeqNo, ExecResult)>,
    /// Outstanding local executions.
    we_remaining: usize,
    /// How this block's own share is scheduled.
    engine: Engine,
}

impl BlockRun {
    fn is_done(&self) -> bool {
        self.committed_count == self.bundle.block.len()
    }
}

/// The executor node (and passive peer) runtime.
pub(crate) struct Executor {
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
    backend: ExecBackend,
    /// Multi-version blockchain state: every applied write is a versioned
    /// put at the writer's log position, so concurrent blocks read
    /// position-correct snapshots.
    state: MvccState,
    ledger: Ledger,
    /// Where committed effects and sealed blocks persist (DESIGN.md §9):
    /// a no-op in memory, the `parblock_store` WAL + block store +
    /// checkpoints on disk. Effects are logged before the COMMIT message
    /// carrying them is multicast, and a block is sealed durably before
    /// it is acknowledged (persist-before-COMMIT).
    durability: Box<dyn Durability>,
    /// NEWBLOCK admission (verification + quorum counting).
    admission: NewBlockQuorum,
    /// Blocks that reached quorum, waiting their turn.
    ready: BTreeMap<u64, Arc<BlockBundle>>,
    /// COMMIT messages for blocks not yet started.
    held_commits: BTreeMap<u64, Vec<Arc<CommitMsg>>>,
    /// In-flight blocks, by number; at most `depth` of them.
    runs: BTreeMap<u64, BlockRun>,
    /// Pending cross-block writers, retained across in-flight blocks.
    xindex: CrossBlockIndex,
    /// Writer position → positions in later in-flight blocks waiting on
    /// its write to be applied (or its abort to be known).
    xwaiters: HashMap<(u64, SeqNo), Vec<(u64, SeqNo)>>,
    /// The next block number to start (≥ the ledger's next number;
    /// in-flight runs live in between).
    next_to_start: u64,
    /// Pipeline capacity (`ClusterSpec::exec_pipeline_depth`, min 1).
    depth: usize,
    /// When the next block became ready while the pipeline was full.
    pending_stall: Option<Instant>,
    /// Pending optimistic-engine events (write rechecks), drained by the
    /// validation pump inside [`Executor::try_advance`].
    opt_events: VecDeque<OptEvent>,
    is_observer: bool,
    /// Peers that receive this node's COMMIT messages.
    commit_dests: Vec<NodeId>,
}

impl Executor {
    /// Threaded construction: contract executions run on an
    /// [`ExecPool`] of `spec.exec_pool` workers.
    pub(crate) fn new(shared: Arc<Shared>, endpoint: Endpoint<Msg>) -> Self {
        let backend = ExecBackend::Pool(ExecPool::new(shared.spec.exec_pool));
        Self::with_backend(shared, endpoint, backend)
    }

    /// Deterministic construction: no worker threads; executions complete
    /// at `dispatch + cost` in virtual time, observed via
    /// [`Executor::step`].
    pub(crate) fn new_stepped(shared: Arc<Shared>, endpoint: Endpoint<Msg>) -> Self {
        Self::with_backend(shared, endpoint, ExecBackend::Inline(InlineQueue::new()))
    }

    fn with_backend(shared: Arc<Shared>, endpoint: Endpoint<Msg>, backend: ExecBackend) -> Self {
        let mut state = MvccState::with_genesis(shared.genesis.iter().cloned());
        let is_observer = endpoint.id() == shared.spec.observer();
        let commit_dests = shared.spec.peer_ids();
        let admission = NewBlockQuorum::new(shared.spec.newblock_quorum());
        let depth = shared.spec.exec_pipeline_depth.max(1);
        // Crash recovery: an on-disk store rebuilds the sealed chain,
        // the state at the commit watermark, and hence where execution
        // resumes; an in-memory node starts from genesis.
        let seal_trace = if is_observer {
            shared.trace.clone()
        } else {
            parblock_trace::TraceRecorder::default()
        };
        let node = crate::durability::for_peer(&shared.spec, endpoint.id(), seal_trace);
        let durability = node.durability;
        let mut ledger = Ledger::new();
        if let Some(recovered) = node.recovered {
            ledger = recovered
                .ledger()
                .expect("recovered chain verified at store open");
            recovered.overlay_state(&mut state);
        }
        let next_to_start = ledger.next_number().0;
        Executor {
            shared,
            endpoint,
            backend,
            state,
            ledger,
            durability,
            admission,
            ready: BTreeMap::new(),
            held_commits: BTreeMap::new(),
            runs: BTreeMap::new(),
            xindex: CrossBlockIndex::new(),
            xwaiters: HashMap::new(),
            next_to_start,
            depth,
            pending_stall: None,
            opt_events: VecDeque::new(),
            is_observer,
            commit_dests,
        }
    }

    pub(crate) fn run(mut self) {
        let ExecBackend::Pool(ref pool) = self.backend else {
            unreachable!("the threaded loop requires the pool backend");
        };
        let completions = pool.completions().clone();
        loop {
            if self.shared.stop.load(Ordering::Relaxed) {
                break;
            }
            // Select over the network and the pool without borrowing self
            // across the handler calls.
            enum Event {
                Net(parblock_net::Envelope<Msg>),
                Done(Completion),
                Idle,
            }
            let event = {
                let net = self.endpoint.receiver();
                let done = if self.runs.is_empty() {
                    never()
                } else {
                    completions.clone()
                };
                crossbeam::select! {
                    recv(net) -> msg => msg.map(Event::Net).unwrap_or(Event::Idle),
                    recv(done) -> c => c.map(Event::Done).unwrap_or(Event::Idle),
                    default(IDLE_TICK) => Event::Idle,
                }
            };
            match event {
                Event::Net(envelope) => self.on_msg(envelope.from, envelope.msg),
                Event::Done(completion) => self.on_completion(completion),
                Event::Idle => {}
            }
        }
        self.finalize();
        if let ExecBackend::Pool(pool) = self.backend {
            pool.shutdown();
        }
    }

    /// Flushes end-of-run observability (the observer's durability
    /// counters). Called once when the node stops serving.
    pub(crate) fn finalize(&mut self) {
        if self.is_observer {
            self.shared
                .metrics
                .set_durability_stats(self.durability.stats());
        }
    }

    /// Deterministic step: drain the mailbox, then surface every
    /// execution whose virtual completion time has arrived. Returns how
    /// many events (messages + completions) were handled.
    ///
    /// # Panics
    ///
    /// Panics on a pool-backed executor — stepping is only meaningful
    /// under the inline backend.
    pub(crate) fn step(&mut self) -> usize {
        let mut handled = 0;
        while let Some(envelope) = self.endpoint.try_recv() {
            self.on_msg(envelope.from, envelope.msg);
            handled += 1;
        }
        let now = self.shared.clock.now();
        let due = match &mut self.backend {
            ExecBackend::Inline(queue) => queue.take_due(now),
            ExecBackend::Pool(_) => panic!("step() requires the inline backend"),
        };
        for completion in due {
            self.on_completion(completion);
            handled += 1;
        }
        handled
    }

    /// The earliest instant at which this executor has more work
    /// (a pending virtual completion), for the scheduler's time advance.
    pub(crate) fn next_completion_due(&self) -> Option<Instant> {
        match &self.backend {
            ExecBackend::Inline(queue) => queue.next_due(),
            ExecBackend::Pool(_) => None,
        }
    }

    /// Whether the inline backend still holds unfinished executions.
    pub(crate) fn has_pending_work(&self) -> bool {
        match &self.backend {
            ExecBackend::Inline(queue) => !queue.is_empty(),
            ExecBackend::Pool(_) => false,
        }
    }

    // ---- oracle accessors (deterministic simulation) -------------------

    /// The node id.
    pub(crate) fn node_id(&self) -> NodeId {
        self.endpoint.id()
    }

    /// The sealed ledger (blocks appended strictly in order).
    pub(crate) fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The commit watermark: number of the last sealed block.
    pub(crate) fn watermark(&self) -> BlockNumber {
        BlockNumber(self.ledger.next_number().0 - 1)
    }

    /// State digest at the commit watermark — quorum-voted writes from
    /// still-in-flight later blocks are excluded, so lagging replicas
    /// can be compared prefix-against-prefix.
    pub(crate) fn state_digest_at_watermark(&self) -> Hash32 {
        self.state
            .digest_at(Version::new(self.watermark(), SeqNo(u32::MAX)))
    }

    fn on_msg(&mut self, from: NodeId, msg: Msg) {
        match msg {
            Msg::NewBlock {
                bundle,
                orderer,
                sig,
            } => self.on_new_block(from, bundle, orderer, &sig),
            Msg::Commit(commit) => self.on_commit_msg(&commit),
            _ => {}
        }
    }

    // ---- NEWBLOCK handling (§IV-C: wait for the specified number of
    // matching new-block messages) --------------------------------------

    fn on_new_block(
        &mut self,
        from: NodeId,
        bundle: Arc<BlockBundle>,
        orderer: NodeId,
        sig: &Signature,
    ) {
        // Blocks below `next_to_start` are started or appended already;
        // duplicate quorum copies of them are dropped at admission.
        let next_needed = self.next_to_start;
        if let Some(validated) =
            self.admission
                .admit(&self.shared, from, bundle, orderer, sig, next_needed)
        {
            self.ready.insert(validated.block.number().0, validated);
            self.try_advance();
        }
    }

    /// Drives the pipeline: pumps the optimistic validation loop, appends
    /// finished blocks in order, and starts ready blocks while capacity
    /// lasts, until none of the three makes progress.
    fn try_advance(&mut self) {
        loop {
            let pumped = self.pump_opt();
            let appended = self.drain_finished_blocks();
            let started = self.try_start_ready();
            if !pumped && !appended && !started {
                break;
            }
        }
    }

    /// Starts ready blocks in block order while the pipeline has
    /// capacity. Returns `true` if any block started.
    fn try_start_ready(&mut self) -> bool {
        let mut started = false;
        loop {
            let next = self.next_to_start;
            if !self.ready.contains_key(&next) {
                return started;
            }
            if self.runs.len() >= self.depth {
                // Boundary stall: work is ready but the pipeline is full.
                if self.pending_stall.is_none() {
                    self.pending_stall = Some(self.shared.clock.now());
                }
                return started;
            }
            let bundle = self.ready.remove(&next).expect("checked");
            self.start_block(bundle);
            started = true;
        }
    }

    fn start_block(&mut self, bundle: Arc<BlockBundle>) {
        let graph = bundle
            .graph
            .clone()
            .expect("OXII NEWBLOCK always carries a dependency graph");
        let number = bundle.block.number().0;
        debug_assert_eq!(number, self.next_to_start, "blocks start in order");
        self.next_to_start = number + 1;
        let n = bundle.block.len();
        let me = self.endpoint.id();
        let mut we = vec![false; n];
        let mut we_remaining = 0;
        for (seq, tx) in bundle.block.iter_seq() {
            if self.shared.registry.is_agent(me, tx.app()) {
                we[seq.0 as usize] = true;
                we_remaining += 1;
            }
        }
        // Cross-block dependencies: pending writers of still-in-flight
        // earlier blocks that touch this block's keys. At depth 1 the
        // previous block fully committed before this one starts, so the
        // index is empty and behaviour is exactly the paper's barrier.
        let xdeps = self.xindex.admit_block(number, bundle.block.transactions());
        let mut external = vec![0u32; n];
        for (i, deps) in xdeps.iter().enumerate() {
            external[i] = u32::try_from(deps.len()).expect("dependency count fits u32");
            for &writer in deps {
                self.xwaiters
                    .entry(writer)
                    .or_default()
                    .push((number, SeqNo(i as u32)));
            }
        }
        // Engine choice (deterministic across replicas: the mode is
        // cluster config and the graph rides in the ordered bundle).
        let optimistic = match self.shared.spec.execution_mode {
            ExecutionMode::Pessimistic => false,
            ExecutionMode::Optimistic => true,
            ExecutionMode::HybridByContention => hybrid_picks_optimistic(&graph),
        };
        let engine = if optimistic {
            Engine::Optimistic(Box::new(OptState::new(n)))
        } else {
            Engine::Pessimistic
        };
        // Lifecycle stages are observed once, at the observer node, like
        // the commit metrics: attach the recorder before the first
        // `take_ready` so construction-time roots are stamped too.
        let mut tracker = ReadyTracker::with_external(&graph, &external);
        if self.is_observer && self.shared.trace.enabled() {
            let ids: Vec<TxId> = bundle.block.transactions().iter().map(|tx| tx.id()).collect();
            tracker.set_trace(self.shared.trace.clone(), ids);
        }
        let mut run = BlockRun {
            bundle,
            tracker,
            we,
            votes: HashMap::new(),
            executed: vec![false; n],
            committed: vec![false; n],
            committed_count: 0,
            xe_buffer: Vec::new(),
            we_remaining,
            engine,
        };
        let initial = run.tracker.take_ready();
        self.runs.insert(number, run);
        if self.is_observer {
            self.shared.metrics.record_pipeline_occupancy(self.runs.len());
        }
        if let Some(since) = self.pending_stall.take() {
            if self.is_observer {
                let stall = self.shared.clock.now().saturating_duration_since(since);
                self.shared.metrics.record_boundary_stall(stall);
            }
        }
        if optimistic {
            // Under this engine the tracker's readiness gates validation,
            // not dispatch: record which positions start dependency-free.
            if let Some(run) = self.runs.get_mut(&number) {
                if let Engine::Optimistic(opt) = &mut run.engine {
                    for &seq in &initial {
                        opt.validate_ready[seq.0 as usize] = true;
                    }
                }
            }
            // Block-STM: speculate on every own position at once — the
            // dependency graph only gates validation order, not dispatch.
            for i in 0..n {
                if self.runs.get(&number).is_some_and(|r| r.we[i]) {
                    self.opt_dispatch(number, SeqNo(i as u32));
                }
            }
        } else {
            self.dispatch_ready(number, &initial);
        }
        // Replay commit messages that arrived early (signature-verified
        // on receipt).
        if let Some(held) = self.held_commits.remove(&number) {
            for commit in held {
                self.apply_commit(&commit);
            }
        }
    }

    // ---- Algorithm 1: execution following the dependency graph --------

    fn dispatch_ready(&mut self, number: u64, ready: &[SeqNo]) {
        let Some(run) = self.runs.get(&number) else {
            return;
        };
        debug_assert!(
            matches!(run.engine, Engine::Pessimistic),
            "optimistic runs dispatch through opt_dispatch"
        );
        let block_number = run.bundle.block.number();
        let cost = self.shared.spec.costs.per_tx;
        let mut items = Vec::new();
        for &seq in ready {
            if !run.we[seq.0 as usize] || run.executed[seq.0 as usize] {
                continue;
            }
            let tx = run.bundle.block.tx(seq).expect("seq valid").clone();
            let Ok(contract) = self.shared.registry.contract(tx.app()) else {
                continue;
            };
            // Version-positioned snapshot of the declared read set: the
            // greatest version below this transaction's log position.
            // Every earlier writer of these keys has applied (in-block:
            // the dependency graph; cross-block: the conflict index), so
            // this is the serial-order prefix state for these keys even
            // while other blocks execute concurrently.
            let position = Version::new(block_number, seq);
            let mut snapshot = HashMap::new();
            for key in tx.rw_set().reads() {
                snapshot.insert(*key, self.state.get_at(*key, position));
            }
            items.push(WorkItem {
                block: block_number,
                seq,
                incarnation: 0,
                tx,
                snapshot: SnapshotReader::new(snapshot),
                contract: Arc::clone(contract),
                cost,
            });
        }
        if self.is_observer && self.shared.trace.enabled() {
            let now = self.shared.clock.now();
            for item in &items {
                self.shared
                    .trace
                    .record_at(item.tx.id(), parblock_trace::Stage::Dispatched, now);
            }
        }
        // One handoff for the whole ready set (DESIGN.md §15): the
        // backend is resolved once and, in deterministic mode, one clock
        // read stamps every completion due time.
        if !items.is_empty() {
            match &mut self.backend {
                ExecBackend::Pool(pool) => pool.dispatch_batch(items),
                ExecBackend::Inline(queue) => {
                    queue.dispatch_batch(items, self.shared.clock.now());
                }
            }
        }
    }

    fn on_completion(&mut self, completion: Completion) {
        let number = completion.block.0;
        match self.runs.get(&number).map(|run| &run.engine) {
            None => return, // stale completion from a finished block
            Some(Engine::Optimistic(_)) => self.opt_on_completion(completion),
            Some(Engine::Pessimistic) => self.pess_on_completion(completion),
        }
        self.try_advance();
    }

    /// Pessimistic completion handling: the result is final the moment it
    /// lands (its snapshot was the serial-prefix state by construction).
    fn pess_on_completion(&mut self, completion: Completion) {
        let number = completion.block.0;
        let seq = completion.seq;
        let idx = seq.0 as usize;
        let cut = {
            let Some(run) = self.runs.get_mut(&number) else {
                return; // stale completion from a finished block
            };
            if run.executed[idx] {
                return;
            }
            run.executed[idx] = true;
            run.we_remaining -= 1;
            if self.is_observer {
                if let Some(tx) = run.bundle.block.tx(seq) {
                    self.shared
                        .trace
                        .record(tx.id(), parblock_trace::Stage::Executed);
                }
            }
            // Algorithm 2: multicast when another application needs this
            // result, or when our share of the block is complete. The
            // per-transaction alternative (ablation) flushes every time.
            let graph = run
                .bundle
                .graph
                .as_ref()
                .expect("OXII bundle carries graph");
            match self.shared.spec.commit_flush {
                crate::cluster::CommitFlush::Cut => {
                    graph.has_foreign_successor(seq) || run.we_remaining == 0
                }
                crate::cluster::CommitFlush::PerTransaction => true,
            }
        };
        // Apply own writes immediately as a versioned put (deterministic
        // across agents), so successors read them (Xe semantics of
        // Algorithm 1). Effects hit the WAL (group-commit buffered)
        // before the COMMIT multicast below; they become durable at the
        // latest at the block's seal fsync — a crash before that loses
        // only unsealed results, which recovery re-executes
        // deterministically (DESIGN.md §9).
        if let ExecResult::Committed(writes) = &completion.result {
            let version = Version::new(completion.block, seq);
            self.durability.log_effects(version, writes);
            self.state.apply(writes.iter().cloned(), version);
            // Hybrid pipelines mix engines: a later in-flight optimistic
            // block may have speculated over these keys already.
            let keys: Vec<Key> = writes.iter().map(|(k, _)| *k).collect();
            self.note_writes_applied(version, &keys);
        }
        if let Some(run) = self.runs.get_mut(&number) {
            run.xe_buffer.push((seq, completion.result.clone()));
        }
        if cut {
            self.flush_commit_buffer(number);
        }

        // Vote our own result (Algorithm 3 treats it like any agent's).
        let me = self.endpoint.id();
        self.record_vote(number, seq, me, completion.result);

        // Xe membership releases successors for local execution — both
        // in-block (dependency graph) and cross-block (conflict index).
        self.complete_position(number, seq);
    }

    // ---- The optimistic (Block-STM) engine: speculate, validate,
    // re-execute (DESIGN.md §11) ----------------------------------------

    /// Speculatively dispatches (or re-dispatches) one own position,
    /// snapshotting its declared reads against the committed + speculative
    /// overlay and recording what was observed. A read covered by a
    /// lower-positioned estimate marker defers the dispatch to the
    /// marker's writer instead.
    fn opt_dispatch(&mut self, number: u64, seq: SeqNo) {
        let idx = seq.0 as usize;
        let Some(run) = self.runs.get_mut(&number) else {
            return;
        };
        if run.committed[idx] || run.executed[idx] || !run.we[idx] {
            return;
        }
        let block_number = run.bundle.block.number();
        let tx = run.bundle.block.tx(seq).expect("seq valid").clone();
        let Engine::Optimistic(opt) = &mut run.engine else {
            return;
        };
        for key in tx.rw_set().reads() {
            if let Some(&writer) = opt.estimates.get(key) {
                if writer < seq.0 {
                    opt.deferred.entry(writer).or_default().push(seq.0);
                    return;
                }
            }
        }
        let position = Version::new(block_number, seq);
        let incarnation = opt.incarnation[idx];
        let mut snapshot = HashMap::new();
        let mut recorded = Vec::new();
        for key in tx.rw_set().reads() {
            // Strictly below the position: an incarnation must never
            // observe its own earlier speculative write.
            let observed = self.state.get_at_speculative(*key, position);
            snapshot.insert(*key, observed.as_ref().map(|(value, _)| value.clone()));
            opt.readers.entry(*key).or_default().insert(seq.0);
            recorded.push((*key, observed));
        }
        opt.reads[idx] = recorded;
        let Ok(contract) = self.shared.registry.contract(tx.app()) else {
            return;
        };
        if incarnation > 0 && self.is_observer {
            self.shared.metrics.record_re_execution();
        }
        let item = WorkItem {
            block: block_number,
            seq,
            incarnation,
            tx,
            snapshot: SnapshotReader::new(snapshot),
            contract: Arc::clone(contract),
            cost: self.shared.spec.costs.per_tx,
        };
        // First-record-wins: a re-execution keeps the first dispatch
        // timestamp, so the re-execution delay lands in the
        // executed→validated gap instead of shifting earlier stages.
        if self.is_observer {
            self.shared
                .trace
                .record(item.tx.id(), parblock_trace::Stage::Dispatched);
        }
        match &mut self.backend {
            ExecBackend::Pool(pool) => pool.dispatch(item),
            ExecBackend::Inline(queue) => queue.dispatch(item, self.shared.clock.now()),
        }
    }

    /// A speculative execution finished: stage its result for validation,
    /// publish its writes to the speculative overlay, lift its estimate
    /// markers, and release readers that deferred on it.
    fn opt_on_completion(&mut self, completion: Completion) {
        let number = completion.block.0;
        let seq = completion.seq;
        let idx = seq.0 as usize;
        let version = Version::new(completion.block, seq);
        let (keys, deferred) = {
            let Some(run) = self.runs.get_mut(&number) else {
                return;
            };
            if run.committed[idx] || run.executed[idx] {
                return; // already final through votes or validation
            }
            let Engine::Optimistic(opt) = &mut run.engine else {
                return;
            };
            if completion.incarnation != opt.incarnation[idx] {
                return; // stale incarnation, superseded by a re-execution
            }
            opt.exec_done[idx] = true;
            if self.is_observer {
                if let Some(tx) = run.bundle.block.tx(seq) {
                    self.shared
                        .trace
                        .record(tx.id(), parblock_trace::Stage::Executed);
                }
            }
            let keys: Vec<Key> = match &completion.result {
                ExecResult::Committed(writes) => writes.iter().map(|(k, _)| *k).collect(),
                ExecResult::Aborted(_) => Vec::new(),
            };
            opt.spec_keys[idx] = keys.clone();
            opt.pending[idx] = Some(completion.result.clone());
            // The writer has (re-)executed: lift its estimate markers and
            // wake the readers that deferred on it.
            opt.estimates.retain(|_, writer| *writer != seq.0);
            let deferred = opt.deferred.remove(&seq.0).unwrap_or_default();
            (keys, deferred)
        };
        if let ExecResult::Committed(writes) = &completion.result {
            self.state
                .apply_speculative(writes.iter().cloned(), version);
        }
        if !keys.is_empty() {
            self.note_writes_applied(version, &keys);
        }
        for reader in deferred {
            self.opt_dispatch(number, SeqNo(reader));
        }
    }

    /// Queues a recheck of recorded reads over `keys` if any optimistic
    /// run is in flight (writes from any engine can clobber speculation).
    fn note_writes_applied(&mut self, version: Version, keys: &[Key]) {
        if keys.is_empty() {
            return;
        }
        let any_optimistic = self
            .runs
            .values()
            .any(|run| matches!(run.engine, Engine::Optimistic(_)));
        if any_optimistic {
            self.opt_events.push_back(OptEvent::Recheck {
                version,
                keys: keys.to_vec(),
            });
        }
    }

    /// Drains optimistic events and advances validation cursors to a
    /// fixpoint. Returns `true` if anything happened.
    fn pump_opt(&mut self) -> bool {
        let mut progress = false;
        loop {
            if let Some(OptEvent::Recheck { version, keys }) = self.opt_events.pop_front() {
                self.handle_recheck(version, &keys);
                progress = true;
                continue;
            }
            let mut advanced = false;
            let numbers: Vec<u64> = self.runs.keys().copied().collect();
            for number in numbers {
                advanced |= self.validate_scan(number);
            }
            if advanced {
                progress = true;
                continue;
            }
            return progress;
        }
    }

    /// Eager invalidation: writes landed (or were retracted) at
    /// `version`, so speculatively-complete readers of those keys above
    /// it whose recorded reads no longer resolve identically are aborted
    /// and re-dispatched now, rather than discovered at their cursor turn.
    fn handle_recheck(&mut self, version: Version, keys: &[Key]) {
        let numbers: Vec<u64> = self
            .runs
            .iter()
            .filter(|(n, run)| {
                **n >= version.block.0 && matches!(run.engine, Engine::Optimistic(_))
            })
            .map(|(n, _)| *n)
            .collect();
        for number in numbers {
            let candidates: Vec<u32> = {
                let Some(run) = self.runs.get(&number) else {
                    continue;
                };
                let block_number = run.bundle.block.number();
                let Engine::Optimistic(opt) = &run.engine else {
                    continue;
                };
                let mut set = BTreeSet::new();
                for key in keys {
                    if let Some(readers) = opt.readers.get(key) {
                        for &reader in readers {
                            if Version::new(block_number, SeqNo(reader)) > version {
                                set.insert(reader);
                            }
                        }
                    }
                }
                set.into_iter().collect()
            };
            for reader in candidates {
                let idx = reader as usize;
                let invalid = {
                    let Some(run) = self.runs.get(&number) else {
                        break;
                    };
                    if run.committed[idx] || run.executed[idx] {
                        continue;
                    }
                    let Engine::Optimistic(opt) = &run.engine else {
                        break;
                    };
                    // An earlier candidate's cascade may have already
                    // invalidated this one.
                    if !opt.exec_done[idx] {
                        continue;
                    }
                    let position = Version::new(run.bundle.block.number(), SeqNo(reader));
                    !opt.reads[idx]
                        .iter()
                        .all(|(k, observed)| self.state.get_at_speculative(*k, position) == *observed)
                };
                if invalid {
                    self.opt_invalidate(number, SeqNo(reader));
                }
            }
        }
    }

    /// One validation sweep over a run's own positions, ascending: a
    /// position whose graph predecessors are all final
    /// (`validate_ready`) and whose current incarnation has finished
    /// executing gets its recorded reads checked against the live view.
    /// By readiness, every earlier writer of its declared keys — same
    /// block or cross-block — is final, so the check compares against the
    /// serial-prefix values the pessimistic engine would have read: a
    /// pass finalizes the exact pessimistic result, a fail aborts and
    /// re-dispatches the next incarnation. Returns `true` on any change.
    fn validate_scan(&mut self, number: u64) -> bool {
        let mut progress = false;
        let n = {
            let Some(run) = self.runs.get(&number) else {
                return false;
            };
            if !matches!(run.engine, Engine::Optimistic(_)) {
                return false;
            }
            run.bundle.block.len()
        };
        for idx in 0..n {
            let seq = SeqNo(idx as u32);
            let valid = {
                let Some(run) = self.runs.get(&number) else {
                    return progress;
                };
                let Engine::Optimistic(opt) = &run.engine else {
                    return progress;
                };
                if run.committed[idx]
                    || run.executed[idx]
                    || !run.we[idx]
                    || !opt.validate_ready[idx]
                    || !opt.exec_done[idx]
                {
                    continue;
                }
                let position = Version::new(run.bundle.block.number(), seq);
                opt.reads[idx]
                    .iter()
                    .all(|(k, observed)| self.state.get_at_speculative(*k, position) == *observed)
            };
            if self.is_observer {
                self.shared.metrics.record_validation_pass();
            }
            if valid {
                self.opt_finalize(number, seq);
            } else {
                self.opt_invalidate(number, seq);
            }
            progress = true;
        }
        progress
    }

    /// Promotes a validated speculative result to final: the speculative
    /// writes move to the committed layer at the same version, and the
    /// result flows through the unchanged Algorithm 2/3 paths (buffer,
    /// cut multicast, own vote, successor release).
    fn opt_finalize(&mut self, number: u64, seq: SeqNo) {
        let idx = seq.0 as usize;
        let (result, spec_keys, cut, version) = {
            let Some(run) = self.runs.get_mut(&number) else {
                return;
            };
            let block_number = run.bundle.block.number();
            let (result, spec_keys) = {
                let Engine::Optimistic(opt) = &mut run.engine else {
                    return;
                };
                let result = opt.pending[idx]
                    .take()
                    .expect("validated position holds its result");
                let spec_keys = std::mem::take(&mut opt.spec_keys[idx]);
                let reads = std::mem::take(&mut opt.reads[idx]);
                for (key, _) in &reads {
                    if let Some(readers) = opt.readers.get_mut(key) {
                        readers.remove(&seq.0);
                    }
                }
                (result, spec_keys)
            };
            run.executed[idx] = true;
            run.we_remaining -= 1;
            if self.is_observer {
                if let Some(tx) = run.bundle.block.tx(seq) {
                    self.shared
                        .trace
                        .record(tx.id(), parblock_trace::Stage::Validated);
                }
            }
            let graph = run
                .bundle
                .graph
                .as_ref()
                .expect("OXII bundle carries graph");
            let cut = match self.shared.spec.commit_flush {
                crate::cluster::CommitFlush::Cut => {
                    graph.has_foreign_successor(seq) || run.we_remaining == 0
                }
                crate::cluster::CommitFlush::PerTransaction => true,
            };
            run.xe_buffer.push((seq, result.clone()));
            (result, spec_keys, cut, Version::new(block_number, seq))
        };
        if let ExecResult::Committed(writes) = &result {
            // Same value at the same version: later readers that observed
            // the speculative entry stay valid across the promotion.
            self.state.retract_speculative(version, &spec_keys);
            self.durability.log_effects(version, writes);
            self.state.apply(writes.iter().cloned(), version);
        }
        if cut {
            self.flush_commit_buffer(number);
        }
        let me = self.endpoint.id();
        self.record_vote(number, seq, me, result);
        self.complete_position(number, seq);
    }

    /// Aborts the current incarnation of a clobbered position: retract
    /// its speculative writes, leave estimate markers on the retracted
    /// keys (readers defer rather than chase the hole), and re-dispatch
    /// the next incarnation.
    fn opt_invalidate(&mut self, number: u64, seq: SeqNo) {
        let idx = seq.0 as usize;
        let (version, spec_keys) = {
            let Some(run) = self.runs.get_mut(&number) else {
                return;
            };
            let block_number = run.bundle.block.number();
            let Engine::Optimistic(opt) = &mut run.engine else {
                return;
            };
            if !opt.exec_done[idx] {
                return;
            }
            opt.exec_done[idx] = false;
            opt.pending[idx] = None;
            opt.incarnation[idx] += 1;
            let spec_keys = std::mem::take(&mut opt.spec_keys[idx]);
            for key in &spec_keys {
                opt.estimates.insert(*key, seq.0);
            }
            let reads = std::mem::take(&mut opt.reads[idx]);
            for (key, _) in &reads {
                if let Some(readers) = opt.readers.get_mut(key) {
                    readers.remove(&seq.0);
                }
            }
            (Version::new(block_number, seq), spec_keys)
        };
        self.state.retract_speculative(version, &spec_keys);
        if self.is_observer {
            self.shared.metrics.record_spec_abort();
        }
        // Readers of the retracted writes are now stale; their re-dispatch
        // will defer on the estimate markers until the next incarnation.
        self.note_writes_applied(version, &spec_keys);
        self.opt_dispatch(number, seq);
    }

    /// Marks a position complete in its run's tracker, dispatches newly
    /// ready in-block successors, and — on the *first* completion —
    /// retires the position from the cross-block index, releasing
    /// waiting transactions in later in-flight blocks.
    fn complete_position(&mut self, number: u64, seq: SeqNo) {
        let (first, dispatch) = {
            let Some(run) = self.runs.get_mut(&number) else {
                return;
            };
            let first = !run.tracker.is_complete(seq);
            let newly = run.tracker.complete(seq);
            // Optimistic runs dispatched everything up front: readiness
            // unlocks validation (next pump) rather than dispatch.
            let dispatch = match &mut run.engine {
                Engine::Pessimistic => newly,
                Engine::Optimistic(opt) => {
                    for &ready in &newly {
                        opt.validate_ready[ready.0 as usize] = true;
                    }
                    Vec::new()
                }
            };
            (first, dispatch)
        };
        if !dispatch.is_empty() {
            self.dispatch_ready(number, &dispatch);
        }
        if first {
            self.release_cross_block(number, seq);
        }
    }

    /// Retires `(number, seq)` as a pending cross-block writer: its
    /// writes are applied (or it aborted), so later-block readers and
    /// writers waiting on it may proceed.
    fn release_cross_block(&mut self, number: u64, seq: SeqNo) {
        self.xindex.complete(number, seq);
        let Some(waiters) = self.xwaiters.remove(&(number, seq)) else {
            return;
        };
        // Group waiters by block: one batched release and one dispatch
        // handoff per waiting block, instead of one per waiter
        // (DESIGN.md §15). Waiter order within a block is preserved, so
        // deterministic-mode ticket order is unchanged.
        let mut by_block: BTreeMap<u64, Vec<SeqNo>> = BTreeMap::new();
        for (wait_block, wait_seq) in waiters {
            by_block.entry(wait_block).or_default().push(wait_seq);
        }
        for (wait_block, wait_seqs) in by_block {
            let now_ready = {
                let Some(run) = self.runs.get_mut(&wait_block) else {
                    continue;
                };
                let newly = run.tracker.release_external_batch(&wait_seqs);
                match &mut run.engine {
                    Engine::Pessimistic => newly,
                    Engine::Optimistic(opt) => {
                        // Speculation never waited; only validation does.
                        // The scan picks the positions up on the next pump.
                        for &ready in &newly {
                            opt.validate_ready[ready.0 as usize] = true;
                        }
                        Vec::new()
                    }
                }
            };
            if !now_ready.is_empty() {
                self.dispatch_ready(wait_block, &now_ready);
            }
        }
    }

    // ---- Algorithm 2: multicasting the results ------------------------

    fn flush_commit_buffer(&mut self, number: u64) {
        let Some(run) = self.runs.get_mut(&number) else {
            return;
        };
        if run.xe_buffer.is_empty() {
            return;
        }
        let results = std::mem::take(&mut run.xe_buffer);
        let block = run.bundle.block.number();
        let me = self.endpoint.id();
        let digest = commit_digest(block, &results);
        let signer = self.shared.spec.node_signer(me);
        let sig = self.shared.keys.sign(signer, &digest.0);
        let msg = Msg::Commit(Arc::new(CommitMsg {
            block,
            results,
            executor: me,
            sig,
        }));
        self.endpoint.multicast(self.commit_dests.iter(), &msg);
    }

    // ---- Algorithm 3: updating the blockchain state -------------------

    fn on_commit_msg(&mut self, commit: &Arc<CommitMsg>) {
        let signer = self.shared.spec.node_signer(commit.executor);
        let digest = commit_digest(commit.block, &commit.results);
        if !self.shared.keys.verify(signer, &digest.0, &commit.sig) {
            return;
        }
        let number = commit.block.0;
        if self.runs.contains_key(&number) {
            self.apply_commit(commit);
        } else if number >= self.next_to_start {
            // Early: the block has not started here yet.
            self.held_commits
                .entry(number)
                .or_default()
                .push(Arc::clone(commit));
        }
        // Late (block already appended): drop.
        self.try_advance();
    }

    /// Counts a verified COMMIT message's votes against its in-flight
    /// run.
    fn apply_commit(&mut self, commit: &Arc<CommitMsg>) {
        let number = commit.block.0;
        for (seq, result) in &commit.results {
            // Algorithm 3 checks the sender is an agent of x's app.
            let app = {
                let Some(run) = self.runs.get(&number) else {
                    return;
                };
                match run.bundle.block.tx(*seq) {
                    Some(tx) => tx.app(),
                    None => continue,
                }
            };
            if !self.shared.registry.is_agent(commit.executor, app) {
                continue;
            }
            self.record_vote(number, *seq, commit.executor, result.clone());
        }
    }

    /// Records one agent's result for `seq`; commits the transaction once
    /// τ(A) matching results are present.
    fn record_vote(&mut self, number: u64, seq: SeqNo, agent: NodeId, result: ExecResult) {
        let Some(run) = self.runs.get_mut(&number) else {
            return;
        };
        let idx = seq.0 as usize;
        if run.committed[idx] {
            return;
        }
        let votes = run.votes.entry(seq).or_default();
        if votes.iter().any(|(a, _)| *a == agent) {
            return; // one vote per agent
        }
        votes.push((agent, result));
        let app = run
            .bundle
            .block
            .tx(seq)
            .expect("valid position")
            .app();
        let required = self.shared.spec.commit_policy().required(app);
        // Find a result with enough matching votes.
        let winner = votes
            .iter()
            .map(|(_, candidate)| {
                (
                    candidate,
                    votes.iter().filter(|(_, r)| r.matches(candidate)).count(),
                )
            })
            .find(|(_, count)| *count >= required)
            .map(|(r, _)| r.clone());
        if let Some(result) = winner {
            self.commit_tx(number, seq, result);
        }
    }

    fn commit_tx(&mut self, number: u64, seq: SeqNo, result: ExecResult) {
        let idx = seq.0 as usize;
        let (block_number, tx_id, executed_locally) = {
            let Some(run) = self.runs.get_mut(&number) else {
                return;
            };
            if run.committed[idx] {
                return;
            }
            run.committed[idx] = true;
            run.committed_count += 1;
            let tx_id: TxId = run.bundle.block.tx(seq).expect("valid").id();
            (run.bundle.block.number(), tx_id, run.executed[idx])
        };
        match &result {
            ExecResult::Committed(writes) => {
                // Agents applied their own writes at execution time; a
                // re-applied identical version is idempotent. Remote
                // results are logged on first apply — they too are part
                // of the recoverable datastore.
                if !executed_locally {
                    let version = Version::new(block_number, seq);
                    self.durability.log_effects(version, writes);
                    self.state.apply(writes.iter().cloned(), version);
                }
                if self.is_observer {
                    self.shared.metrics.record_commit(tx_id);
                }
            }
            ExecResult::Aborted(_) => {
                if self.is_observer {
                    self.shared.metrics.record_abort(tx_id);
                }
            }
        }
        // A quorum decision overrides any local speculation on the
        // position: cancel the in-flight incarnation, retract its
        // speculative writes, and wake readers deferred on it. The
        // committed writes (applied above) may clobber other recorded
        // reads, so queue a recheck.
        let hook = {
            if let Some(run) = self.runs.get_mut(&number) {
                if let Engine::Optimistic(opt) = &mut run.engine {
                    opt.incarnation[idx] = opt.incarnation[idx].wrapping_add(1);
                    opt.exec_done[idx] = false;
                    opt.pending[idx] = None;
                    let spec_keys = std::mem::take(&mut opt.spec_keys[idx]);
                    let reads = std::mem::take(&mut opt.reads[idx]);
                    for (key, _) in &reads {
                        if let Some(readers) = opt.readers.get_mut(key) {
                            readers.remove(&seq.0);
                        }
                    }
                    opt.estimates.retain(|_, writer| *writer != seq.0);
                    let deferred = opt.deferred.remove(&seq.0).unwrap_or_default();
                    Some((spec_keys, deferred))
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some((spec_keys, deferred)) = hook {
            let version = Version::new(block_number, seq);
            self.state.retract_speculative(version, &spec_keys);
            let committed_keys: Vec<Key> = match &result {
                ExecResult::Committed(writes) => writes.iter().map(|(k, _)| *k).collect(),
                ExecResult::Aborted(_) => Vec::new(),
            };
            // Both the retraction and the committed writes shift what
            // later readers should have observed.
            self.note_writes_applied(version, &spec_keys);
            self.note_writes_applied(version, &committed_keys);
            for reader in deferred {
                self.opt_dispatch(number, SeqNo(reader));
            }
        }
        // Ce membership releases successors (Algorithm 1's Ce ∪ Xe).
        self.complete_position(number, seq);
    }

    /// Appends fully committed blocks to the ledger **strictly in
    /// order** — the commit watermark only ever moves forward — pruning
    /// state versions below it. Returns `true` if any block appended.
    fn drain_finished_blocks(&mut self) -> bool {
        let mut appended = false;
        loop {
            let next = self.ledger.next_number().0;
            if !self.runs.get(&next).is_some_and(BlockRun::is_done) {
                return appended;
            }
            // Flush any tail results not yet multicast: with τ(A) below
            // the full agent set, a block can fully commit on remote
            // votes before this node's own share finishes executing, so
            // the `we_remaining == 0` cut may never have fired.
            self.flush_commit_buffer(next);
            let run = self.runs.remove(&next).expect("checked");
            self.ledger
                .append(run.bundle.block.clone())
                .expect("blocks arrive in order with verified hash links");
            // Durable seal before the block is acknowledged anywhere
            // (metrics, observers): fsync barrier over the block body
            // and every logged effect at or below it. The seal hook
            // also owns GC — it prunes state versions below the new
            // watermark and, on disk, checkpoints the pruned state and
            // truncates the WAL on the configured cadence — so version
            // GC and log truncation advance together.
            self.durability.seal_block(
                &run.bundle.block,
                run.bundle.graph.as_ref(),
                self.ledger.head_hash(),
                &mut self.state,
            );
            if self.is_observer {
                self.shared.metrics.record_block();
                self.shared.metrics.set_ledger_head(self.ledger.head_hash());
                if self.shared.spec.capture_state {
                    self.shared.metrics.set_state_digest(self.state.digest());
                }
                // The seal above is synchronous, so stamping after it
                // returns charges the fsync (on disk) to the
                // committed→durable gap — in memory the gap collapses
                // to the drain-loop overhead.
                self.shared.trace.record_durable_block(
                    run.bundle.block.transactions().iter().map(|tx| tx.id()),
                );
            }
            self.held_commits.remove(&next);
            appended = true;
        }
    }
}

/// Version tag leading every COMMIT digest preimage. Bump on any layout
/// change so preimages from different layouts can never collide.
const COMMIT_DIGEST_VERSION: u8 = 1;

/// Digest of a COMMIT message's contents (signed by the executor).
///
/// Values are serialized with [`Value`]'s canonical wire encoding. An
/// earlier revision rendered them through `format!("{value:?}")`, which
/// allocated a `String` per write on the commit hot path and — worse —
/// made the signature preimage depend on `Debug` output, which Rust
/// does not guarantee stable across releases (a silent rolling-upgrade
/// signature break). That pattern is now a `hot-path-alloc` lint error.
fn commit_digest(block: BlockNumber, results: &[(SeqNo, ExecResult)]) -> Hash32 {
    use parblock_types::wire::Wire;
    let mut bytes = Vec::new();
    COMMIT_DIGEST_VERSION.encode(&mut bytes);
    block.0.encode(&mut bytes);
    for (seq, result) in results {
        u64::from(seq.0).encode(&mut bytes);
        match result {
            ExecResult::Committed(writes) => {
                0u8.encode(&mut bytes);
                (writes.len() as u64).encode(&mut bytes);
                for (key, value) in writes {
                    key.0.encode(&mut bytes);
                    value.encode(&mut bytes);
                }
            }
            ExecResult::Aborted(_) => 1u8.encode(&mut bytes),
        }
    }
    parblock_crypto::sha256(&bytes)
}

/// Spawns an OXII executor (or passive peer) thread.
pub(crate) fn spawn_executor(
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
) -> std::thread::JoinHandle<()> {
    let name = format!("executor-{}", endpoint.id());
    // lint:allow(thread-spawn) — node threads are the threaded runner's
    // execution model; the deterministic harness uses the sim scheduler
    std::thread::Builder::new()
        .name(name)
        .spawn(move || Executor::new(shared, endpoint).run())
        .expect("spawn executor")
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblock_types::wire::Wire;

    fn sample_results() -> Vec<(SeqNo, ExecResult)> {
        vec![
            (
                SeqNo(0),
                ExecResult::Committed(vec![
                    (Key(1), Value::Int(5)),
                    (Key(2), Value::Text("paid".into())),
                ]),
            ),
            (SeqNo(1), ExecResult::Aborted("missing state".into())),
            (
                SeqNo(3),
                ExecResult::Committed(vec![(Key(7), Value::Bytes(vec![0xde, 0xad]))]),
            ),
        ]
    }

    /// Pins the COMMIT digest preimage layout. If this golden value
    /// moves, `COMMIT_DIGEST_VERSION` must be bumped in the same change:
    /// executors signing the old layout and verifiers hashing the new
    /// one would otherwise reject each other's COMMITs mid-upgrade.
    #[test]
    fn commit_digest_is_pinned() {
        let digest = commit_digest(BlockNumber(9), &sample_results());
        assert_eq!(
            digest.to_hex(),
            "2d9ecd938f82c5091551467b21dc528ec6f92fa65629f7e25397b7658dc4f10d"
        );
    }

    /// The digest must use `Value`'s canonical wire encoding, not its
    /// `Debug` rendering: Debug output is not a stable wire format (and
    /// allocated a `String` per write on the commit hot path).
    #[test]
    fn commit_digest_does_not_depend_on_debug_rendering() {
        let results = sample_results();
        let legacy = {
            let mut bytes = Vec::new();
            BlockNumber(9).0.encode(&mut bytes);
            for (seq, result) in &results {
                u64::from(seq.0).encode(&mut bytes);
                match result {
                    ExecResult::Committed(writes) => {
                        0u8.encode(&mut bytes);
                        (writes.len() as u64).encode(&mut bytes);
                        for (key, value) in writes {
                            key.0.encode(&mut bytes);
                            format!("{value:?}").as_str().encode(&mut bytes);
                        }
                    }
                    ExecResult::Aborted(_) => 1u8.encode(&mut bytes),
                }
            }
            parblock_crypto::sha256(&bytes)
        };
        let canonical = commit_digest(BlockNumber(9), &results);
        assert_ne!(canonical, legacy, "digest still matches the Debug-based layout");
    }

    /// Distinct value variants with look-alike content must hash apart:
    /// the tagged encoding separates `Text("5")` from `Int(5)` and
    /// `Bytes` from `Text` bytes.
    #[test]
    fn commit_digest_separates_value_variants() {
        let mk = |value: Value| {
            commit_digest(
                BlockNumber(1),
                &[(SeqNo(0), ExecResult::Committed(vec![(Key(1), value)]))],
            )
        };
        let digests = [
            mk(Value::Int(5)),
            mk(Value::Text("5".into())),
            mk(Value::Bytes(b"5".to_vec())),
            mk(Value::Unit),
        ];
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    /// Abort reasons are intentionally outside the digest (agents may
    /// produce differently worded reasons for the same deterministic
    /// abort; τ(A) matching only needs the outcome).
    #[test]
    fn commit_digest_ignores_abort_reason_wording() {
        let a = commit_digest(
            BlockNumber(2),
            &[(SeqNo(0), ExecResult::Aborted("missing state".into()))],
        );
        let b = commit_digest(
            BlockNumber(2),
            &[(SeqNo(0), ExecResult::Aborted("account absent".into()))],
        );
        assert_eq!(a, b);
    }
}
