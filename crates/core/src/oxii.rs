//! ParBlockchain's execution phase (§IV-C): executor nodes running the
//! three concurrent procedures.
//!
//! * **Algorithm 1** — execute the transactions this node is an agent for,
//!   following the dependency graph: a transaction runs once all its
//!   predecessors are locally executed or committed.
//! * **Algorithm 2** — buffer execution results and multicast a COMMIT
//!   message when a result is needed by another application's agents
//!   (a successor across the application cut), or when the node's share
//!   of the block is finished.
//! * **Algorithm 3** — collect COMMIT messages, and once τ(A) matching
//!   results arrive for a transaction, apply them to the blockchain
//!   state.
//!
//! The same node implementation serves *non-executor* peers (agents of no
//! application): they only run Algorithm 3.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::never;
use parblock_crypto::Signature;
use parblock_ledger::{KvState, Ledger, Version};
use parblock_net::Endpoint;
use parblock_types::{BlockNumber, Hash32, NodeId, SeqNo, TxId};

use crate::msg::{BlockBundle, CommitMsg, ExecResult, Msg};
use crate::pool::{Completion, ExecPool, SnapshotReader, WorkItem};
use crate::quorum::NewBlockQuorum;
use crate::shared::Shared;

/// Stop-flag poll granularity.
const IDLE_TICK: Duration = Duration::from_micros(500);

/// Per-block execution state on one executor.
struct BlockRun {
    bundle: Arc<BlockBundle>,
    tracker: parblock_depgraph::ReadyTracker,
    /// `We`: positions this node executes (it is an agent of their app).
    we: Vec<bool>,
    /// Result votes per position: `(agent, result)`, deduplicated per
    /// agent. Our own result is voted like any other agent's.
    votes: HashMap<SeqNo, Vec<(NodeId, ExecResult)>>,
    /// Locally executed positions (the set `Xe`).
    executed: Vec<bool>,
    /// Committed positions (the set `Ce`).
    committed: Vec<bool>,
    committed_count: usize,
    /// Algorithm 2 buffer: executed results not yet multicast.
    xe_buffer: Vec<(SeqNo, ExecResult)>,
    /// Outstanding local executions.
    we_remaining: usize,
}

/// The executor node (and passive peer) runtime.
pub(crate) struct Executor {
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
    pool: ExecPool,
    state: KvState,
    ledger: Ledger,
    /// NEWBLOCK admission (verification + quorum counting).
    admission: NewBlockQuorum,
    /// Blocks that reached quorum, waiting their turn.
    ready: BTreeMap<u64, Arc<BlockBundle>>,
    /// COMMIT messages for blocks not yet started.
    held_commits: BTreeMap<u64, Vec<Arc<CommitMsg>>>,
    current: Option<BlockRun>,
    is_observer: bool,
    /// Peers that receive this node's COMMIT messages.
    commit_dests: Vec<NodeId>,
}

impl Executor {
    pub(crate) fn new(shared: Arc<Shared>, endpoint: Endpoint<Msg>) -> Self {
        let state = KvState::with_genesis(shared.genesis.iter().cloned());
        let is_observer = endpoint.id() == shared.spec.observer();
        let commit_dests = shared.spec.peer_ids();
        let pool = ExecPool::new(shared.spec.exec_pool);
        let admission = NewBlockQuorum::new(shared.spec.newblock_quorum());
        Executor {
            shared,
            endpoint,
            pool,
            state,
            ledger: Ledger::new(),
            admission,
            ready: BTreeMap::new(),
            held_commits: BTreeMap::new(),
            current: None,
            is_observer,
            commit_dests,
        }
    }

    pub(crate) fn run(mut self) {
        loop {
            if self.shared.stop.load(Ordering::Relaxed) {
                break;
            }
            // Select over the network and the pool without borrowing self
            // across the handler calls.
            enum Event {
                Net(parblock_net::Envelope<Msg>),
                Done(Completion),
                Idle,
            }
            let event = {
                let net = self.endpoint.receiver();
                let done = if self.current.is_some() {
                    self.pool.completions().clone()
                } else {
                    never()
                };
                crossbeam::select! {
                    recv(net) -> msg => msg.map(Event::Net).unwrap_or(Event::Idle),
                    recv(done) -> c => c.map(Event::Done).unwrap_or(Event::Idle),
                    default(IDLE_TICK) => Event::Idle,
                }
            };
            match event {
                Event::Net(envelope) => self.on_msg(envelope.from, envelope.msg),
                Event::Done(completion) => self.on_completion(completion),
                Event::Idle => {}
            }
        }
        self.pool.shutdown();
    }

    fn on_msg(&mut self, from: NodeId, msg: Msg) {
        match msg {
            Msg::NewBlock {
                bundle,
                orderer,
                sig,
            } => self.on_new_block(from, bundle, orderer, &sig),
            Msg::Commit(commit) => self.on_commit_msg(&commit),
            _ => {}
        }
    }

    // ---- NEWBLOCK handling (§IV-C: wait for the specified number of
    // matching new-block messages) --------------------------------------

    fn on_new_block(
        &mut self,
        from: NodeId,
        bundle: Arc<BlockBundle>,
        orderer: NodeId,
        sig: &Signature,
    ) {
        let next_needed = self.ledger.next_number().0;
        if let Some(validated) =
            self.admission
                .admit(&self.shared, from, bundle, orderer, sig, next_needed)
        {
            self.ready.insert(validated.block.number().0, validated);
            self.maybe_start_next();
        }
    }

    fn maybe_start_next(&mut self) {
        if self.current.is_some() {
            return;
        }
        let next = self.ledger.next_number().0;
        let Some(bundle) = self.ready.remove(&next) else {
            return;
        };
        self.start_block(bundle);
    }

    fn start_block(&mut self, bundle: Arc<BlockBundle>) {
        let graph = bundle
            .graph
            .clone()
            .expect("OXII NEWBLOCK always carries a dependency graph");
        let n = bundle.block.len();
        let me = self.endpoint.id();
        let mut we = vec![false; n];
        let mut we_remaining = 0;
        for (seq, tx) in bundle.block.iter_seq() {
            if self.shared.registry.is_agent(me, tx.app()) {
                we[seq.0 as usize] = true;
                we_remaining += 1;
            }
        }
        let tracker = parblock_depgraph::ReadyTracker::new(&graph);
        let mut run = BlockRun {
            bundle,
            tracker,
            we,
            votes: HashMap::new(),
            executed: vec![false; n],
            committed: vec![false; n],
            committed_count: 0,
            xe_buffer: Vec::new(),
            we_remaining,
        };
        let initial = run.tracker.take_ready();
        self.current = Some(run);
        self.dispatch_ready(&initial);
        // Replay commit messages that arrived early.
        let number = self.current_number().expect("just started").0;
        if let Some(held) = self.held_commits.remove(&number) {
            for commit in held {
                self.on_commit_msg(&commit);
            }
        }
        self.finish_block_if_done();
    }

    fn current_number(&self) -> Option<BlockNumber> {
        self.current.as_ref().map(|r| r.bundle.block.number())
    }

    // ---- Algorithm 1: execution following the dependency graph --------

    fn dispatch_ready(&mut self, ready: &[SeqNo]) {
        let Some(run) = self.current.as_ref() else {
            return;
        };
        let block_number = run.bundle.block.number();
        let cost = self.shared.spec.costs.per_tx;
        let mut items = Vec::new();
        for &seq in ready {
            if !run.we[seq.0 as usize] || run.executed[seq.0 as usize] {
                continue;
            }
            let tx = run.bundle.block.tx(seq).expect("seq valid").clone();
            let Ok(contract) = self.shared.registry.contract(tx.app()) else {
                continue;
            };
            // Snapshot the declared read set from the current state
            // (predecessor writes are already applied — the graph
            // guarantees it).
            let mut snapshot = HashMap::new();
            for key in tx.rw_set().reads() {
                snapshot.insert(*key, self.state.get(*key));
            }
            items.push(WorkItem {
                block: block_number,
                seq,
                tx,
                snapshot: SnapshotReader::new(snapshot),
                contract: Arc::clone(contract),
                cost,
            });
        }
        for item in items {
            self.pool.dispatch(item);
        }
    }

    fn on_completion(&mut self, completion: Completion) {
        let Some(run) = self.current.as_mut() else {
            return;
        };
        if completion.block != run.bundle.block.number() {
            return; // stale completion from an abandoned run
        }
        let seq = completion.seq;
        let idx = seq.0 as usize;
        if run.executed[idx] {
            return;
        }
        run.executed[idx] = true;
        run.we_remaining -= 1;
        // Apply own writes immediately (deterministic across agents), so
        // successors read them (Xe semantics of Algorithm 1).
        if let ExecResult::Committed(writes) = &completion.result {
            let version = Version::new(completion.block, seq);
            self.state.apply_versioned(writes.iter().cloned(), version);
        }
        run.xe_buffer.push((seq, completion.result.clone()));

        // Algorithm 2: multicast when another application needs this
        // result, or when our share of the block is complete. The
        // per-transaction alternative (ablation) flushes every time.
        let graph = run
            .bundle
            .graph
            .as_ref()
            .expect("OXII bundle carries graph");
        let cut = match self.shared.spec.commit_flush {
            crate::cluster::CommitFlush::Cut => {
                graph.has_foreign_successor(seq) || run.we_remaining == 0
            }
            crate::cluster::CommitFlush::PerTransaction => true,
        };
        if cut {
            self.flush_commit_buffer();
        }

        // Vote our own result (Algorithm 3 treats it like any agent's).
        let me = self.endpoint.id();
        self.record_vote(seq, me, completion.result);

        // Xe membership releases successors for local execution.
        let newly = self
            .current
            .as_mut()
            .map(|r| r.tracker.complete(seq))
            .unwrap_or_default();
        self.dispatch_ready(&newly);
        self.finish_block_if_done();
    }

    // ---- Algorithm 2: multicasting the results ------------------------

    fn flush_commit_buffer(&mut self) {
        let Some(run) = self.current.as_mut() else {
            return;
        };
        if run.xe_buffer.is_empty() {
            return;
        }
        let results = std::mem::take(&mut run.xe_buffer);
        let block = run.bundle.block.number();
        let me = self.endpoint.id();
        let digest = commit_digest(block, &results);
        let signer = self.shared.spec.node_signer(me);
        let sig = self.shared.keys.sign(signer, &digest.0);
        let msg = Msg::Commit(Arc::new(CommitMsg {
            block,
            results,
            executor: me,
            sig,
        }));
        self.endpoint.multicast(self.commit_dests.iter(), &msg);
    }

    // ---- Algorithm 3: updating the blockchain state -------------------

    fn on_commit_msg(&mut self, commit: &Arc<CommitMsg>) {
        let signer = self.shared.spec.node_signer(commit.executor);
        let digest = commit_digest(commit.block, &commit.results);
        if !self.shared.keys.verify(signer, &digest.0, &commit.sig) {
            return;
        }
        let current = self.current_number();
        match current {
            Some(number) if commit.block == number => {}
            _ => {
                // Early (future block) or late (already finished): hold or
                // drop respectively.
                if commit.block.0 >= self.ledger.next_number().0 {
                    self.held_commits
                        .entry(commit.block.0)
                        .or_default()
                        .push(Arc::clone(commit));
                }
                return;
            }
        }
        for (seq, result) in &commit.results {
            // Algorithm 3 checks the sender is an agent of x's app.
            let app = {
                let run = self.current.as_ref().expect("checked above");
                match run.bundle.block.tx(*seq) {
                    Some(tx) => tx.app(),
                    None => continue,
                }
            };
            if !self.shared.registry.is_agent(commit.executor, app) {
                continue;
            }
            self.record_vote(*seq, commit.executor, result.clone());
        }
        self.finish_block_if_done();
    }

    /// Records one agent's result for `seq`; commits the transaction once
    /// τ(A) matching results are present.
    fn record_vote(&mut self, seq: SeqNo, agent: NodeId, result: ExecResult) {
        let Some(run) = self.current.as_mut() else {
            return;
        };
        let idx = seq.0 as usize;
        if run.committed[idx] {
            return;
        }
        let votes = run.votes.entry(seq).or_default();
        if votes.iter().any(|(a, _)| *a == agent) {
            return; // one vote per agent
        }
        votes.push((agent, result));
        let app = run
            .bundle
            .block
            .tx(seq)
            .expect("valid position")
            .app();
        let required = self.shared.spec.commit_policy().required(app);
        // Find a result with enough matching votes.
        let winner = votes
            .iter()
            .map(|(_, candidate)| {
                (
                    candidate,
                    votes.iter().filter(|(_, r)| r.matches(candidate)).count(),
                )
            })
            .find(|(_, count)| *count >= required)
            .map(|(r, _)| r.clone());
        if let Some(result) = winner {
            self.commit_tx(seq, result);
        }
    }

    fn commit_tx(&mut self, seq: SeqNo, result: ExecResult) {
        let Some(run) = self.current.as_mut() else {
            return;
        };
        let idx = seq.0 as usize;
        if run.committed[idx] {
            return;
        }
        run.committed[idx] = true;
        run.committed_count += 1;
        let block_number = run.bundle.block.number();
        let tx_id: TxId = run.bundle.block.tx(seq).expect("valid").id();
        let executed_locally = run.executed[idx];
        match &result {
            ExecResult::Committed(writes) => {
                // Agents applied their own writes at execution time.
                if !executed_locally {
                    let version = Version::new(block_number, seq);
                    self.state.apply_versioned(writes.iter().cloned(), version);
                }
                if self.is_observer {
                    self.shared.metrics.record_commit(tx_id);
                }
            }
            ExecResult::Aborted(_) => {
                if self.is_observer {
                    self.shared.metrics.record_abort(tx_id);
                }
            }
        }
        // Ce membership releases successors (Algorithm 1's Ce ∪ Xe).
        let newly = self
            .current
            .as_mut()
            .map(|r| r.tracker.complete(seq))
            .unwrap_or_default();
        self.dispatch_ready(&newly);
    }

    fn finish_block_if_done(&mut self) {
        let done = self
            .current
            .as_ref()
            .is_some_and(|run| run.committed_count == run.bundle.block.len());
        if !done {
            return;
        }
        let run = self.current.take().expect("checked");
        // Flush any tail results that were not cut by a foreign successor
        // (defensive: we_remaining == 0 normally flushed already).
        debug_assert!(run.xe_buffer.is_empty());
        self.ledger
            .append(run.bundle.block.clone())
            .expect("blocks arrive in order with verified hash links");
        if self.is_observer {
            self.shared.metrics.record_block();
            if self.shared.spec.capture_state {
                self.shared.metrics.set_state_digest(self.state.digest());
            }
        }
        self.held_commits.remove(&run.bundle.block.number().0);
        self.maybe_start_next();
    }
}

/// Digest of a COMMIT message's contents (signed by the executor).
fn commit_digest(block: BlockNumber, results: &[(SeqNo, ExecResult)]) -> Hash32 {
    use parblock_types::wire::Wire;
    let mut bytes = Vec::new();
    block.0.encode(&mut bytes);
    for (seq, result) in results {
        u64::from(seq.0).encode(&mut bytes);
        match result {
            ExecResult::Committed(writes) => {
                0u8.encode(&mut bytes);
                (writes.len() as u64).encode(&mut bytes);
                for (key, value) in writes {
                    key.0.encode(&mut bytes);
                    // Value encoding for digest purposes only.
                    format!("{value:?}").as_str().encode(&mut bytes);
                }
            }
            ExecResult::Aborted(_) => 1u8.encode(&mut bytes),
        }
    }
    parblock_crypto::sha256(&bytes)
}

/// Spawns an OXII executor (or passive peer) thread.
pub(crate) fn spawn_executor(
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
) -> std::thread::JoinHandle<()> {
    let name = format!("executor-{}", endpoint.id());
    std::thread::Builder::new()
        .name(name)
        .spawn(move || Executor::new(shared, endpoint).run())
        .expect("spawn executor")
}
