//! The block cutter (§IV-B).
//!
//! "Blocks have a pre-defined maximal size, maximal number of
//! transactions, and maximal time the block production takes since the
//! first transaction of a new block was received. When any of these three
//! conditions is satisfied, a block is full."
//!
//! Count and byte conditions are evaluated on the delivered transaction
//! stream and are therefore deterministic across orderers; the time
//! condition is driven by the ordered
//! [`Payload::CutMarker`](crate::batch::Payload::CutMarker), which is
//! equally deterministic.

use std::time::Instant;

use parblock_types::{BlockCutConfig, Transaction};

/// Accumulates ordered transactions and cuts blocks.
#[derive(Debug)]
pub struct BlockCutter {
    cfg: BlockCutConfig,
    pending: Vec<Transaction>,
    pending_bytes: usize,
    /// When the first pending transaction arrived (leader's local clock;
    /// used only to decide when to *order* a cut marker).
    first_arrival: Option<Instant>,
}

impl BlockCutter {
    /// Creates a cutter.
    #[must_use]
    pub fn new(cfg: BlockCutConfig) -> Self {
        BlockCutter {
            cfg,
            pending: Vec::new(),
            pending_bytes: 0,
            first_arrival: None,
        }
    }

    /// Number of transactions waiting for a cut.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one ordered transaction; returns a full block's transactions
    /// when a deterministic condition (count or bytes) is met.
    pub fn push(&mut self, tx: Transaction) -> Option<Vec<Transaction>> {
        if self.pending.is_empty() {
            self.first_arrival = Some(Instant::now());
        }
        self.pending_bytes += tx.encoded_len();
        self.pending.push(tx);
        if self.pending.len() >= self.cfg.max_txns || self.pending_bytes >= self.cfg.max_bytes {
            return Some(self.cut());
        }
        None
    }

    /// Handles an ordered cut marker: cuts whatever is pending.
    /// Returns `None` when nothing is pending (stale marker).
    pub fn cut_marker(&mut self) -> Option<Vec<Transaction>> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.cut())
        }
    }

    /// Whether the *leader* should order a cut marker: the oldest pending
    /// transaction has waited longer than `max_wait`.
    #[must_use]
    pub fn wants_time_cut(&self) -> bool {
        self.first_arrival
            .is_some_and(|t| t.elapsed() >= self.cfg.max_wait && !self.pending.is_empty())
    }

    fn cut(&mut self) -> Vec<Transaction> {
        self.pending_bytes = 0;
        self.first_arrival = None;
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use parblock_types::{AppId, ClientId, RwSet};

    use super::*;

    fn tx(ts: u64, payload_len: usize) -> Transaction {
        Transaction::new(
            AppId(0),
            ClientId(1),
            ts,
            RwSet::default(),
            vec![0; payload_len],
        )
    }

    fn cfg(max_txns: usize, max_bytes: usize, max_wait_ms: u64) -> BlockCutConfig {
        BlockCutConfig {
            max_txns,
            max_bytes,
            max_wait: Duration::from_millis(max_wait_ms),
        }
    }

    #[test]
    fn cuts_on_transaction_count() {
        let mut cutter = BlockCutter::new(cfg(3, usize::MAX, 1000));
        assert!(cutter.push(tx(1, 0)).is_none());
        assert!(cutter.push(tx(2, 0)).is_none());
        let block = cutter.push(tx(3, 0)).expect("cut at 3");
        assert_eq!(block.len(), 3);
        assert_eq!(cutter.pending_len(), 0);
    }

    #[test]
    fn cuts_on_byte_size() {
        let mut cutter = BlockCutter::new(cfg(usize::MAX, 300, 1000));
        assert!(cutter.push(tx(1, 100)).is_none());
        let block = cutter.push(tx(2, 200)).expect("bytes exceeded");
        assert_eq!(block.len(), 2);
    }

    #[test]
    fn cut_marker_flushes_pending() {
        let mut cutter = BlockCutter::new(cfg(100, usize::MAX, 1000));
        cutter.push(tx(1, 0));
        cutter.push(tx(2, 0));
        let block = cutter.cut_marker().expect("pending flushed");
        assert_eq!(block.len(), 2);
        assert!(cutter.cut_marker().is_none(), "stale marker ignored");
    }

    #[test]
    fn time_cut_requested_after_max_wait() {
        let mut cutter = BlockCutter::new(cfg(100, usize::MAX, 5));
        assert!(!cutter.wants_time_cut());
        cutter.push(tx(1, 0));
        assert!(!cutter.wants_time_cut());
        std::thread::sleep(Duration::from_millis(7));
        assert!(cutter.wants_time_cut());
        let _ = cutter.cut_marker();
        assert!(!cutter.wants_time_cut());
    }

    #[test]
    fn consecutive_blocks_preserve_order() {
        let mut cutter = BlockCutter::new(cfg(2, usize::MAX, 1000));
        let b1 = cutter.push(tx(2, 0)).is_none().then(|| cutter.push(tx(1, 0))).flatten();
        let b1 = b1.expect("first block");
        assert_eq!(b1[0].id().client_ts, 2);
        assert_eq!(b1[1].id().client_ts, 1);
    }
}
