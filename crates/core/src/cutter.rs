//! The block cutter (§IV-B).
//!
//! "Blocks have a pre-defined maximal size, maximal number of
//! transactions, and maximal time the block production takes since the
//! first transaction of a new block was received. When any of these three
//! conditions is satisfied, a block is full."
//!
//! Count and byte conditions are evaluated on the delivered transaction
//! stream and are therefore deterministic across orderers; the time
//! condition is driven by the ordered
//! [`Payload::CutMarker`](crate::batch::Payload::CutMarker), which is
//! equally deterministic. A marker is tagged with the id of the first
//! pending transaction the leader saw, so a marker that raced a
//! count/byte cut (and would otherwise prematurely cut a tiny fresh
//! block) is recognised as stale and ignored.
//!
//! For OXII the cutter also *co-maintains the dependency graph*: each
//! pushed transaction is fed to a [`StreamingBuilder`], so a cut
//! hands the orderer block transactions and finished graph together and
//! the ordering critical path never pays a batch O(n²) rebuild
//! (DESIGN.md §3). [`GraphConstruction::Batch`] keeps the old rebuild-at-
//! cut behaviour as the ablation baseline.

use std::time::Instant;

use parblock_depgraph::{DependencyGraph, DependencyMode, StreamingBuilder};
use parblock_types::{BlockCutConfig, Transaction, TxId};

/// When the OXII orderer computes each block's dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GraphConstruction {
    /// Incrementally while transactions stream in; cut-time emission is
    /// O(pending). The default.
    #[default]
    Streaming,
    /// Rebuilt from scratch at cut time (the paper's original pipeline;
    /// O(n²) in [`DependencyMode::Full`]). Kept as the ablation baseline
    /// for `repro ablation-streaming`.
    Batch,
}

/// How the cutter obtains graphs, per [`GraphConstruction`].
#[derive(Debug)]
enum GraphEngine {
    Streaming(StreamingBuilder),
    Batch(DependencyMode),
}

/// One cut block: the transactions plus, for OXII cutters, the finished
/// dependency graph over them (positions = vector order).
#[derive(Debug)]
pub struct CutBlock {
    /// The block's transactions, in delivery order.
    pub txs: Vec<Transaction>,
    /// `G(B)` — `Some` iff the cutter was built with a graph mode.
    pub graph: Option<DependencyGraph>,
}

/// Accumulates ordered transactions and cuts blocks.
#[derive(Debug)]
pub struct BlockCutter {
    cfg: BlockCutConfig,
    pending: Vec<Transaction>,
    pending_bytes: usize,
    /// When the first pending transaction arrived (leader's local clock;
    /// used only to decide when to *order* a cut marker).
    first_arrival: Option<Instant>,
    graph: Option<GraphEngine>,
}

impl BlockCutter {
    /// Creates a cutter without dependency-graph generation (OX / XOV).
    #[must_use]
    pub fn new(cfg: BlockCutConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Creates an OXII cutter that attaches a dependency graph to every
    /// cut, computed per `construction`.
    #[must_use]
    pub fn with_graph(
        cfg: BlockCutConfig,
        mode: DependencyMode,
        construction: GraphConstruction,
    ) -> Self {
        let engine = match construction {
            GraphConstruction::Streaming => GraphEngine::Streaming(StreamingBuilder::new(mode)),
            GraphConstruction::Batch => GraphEngine::Batch(mode),
        };
        Self::build(cfg, Some(engine))
    }

    fn build(cfg: BlockCutConfig, graph: Option<GraphEngine>) -> Self {
        BlockCutter {
            cfg,
            pending: Vec::new(),
            pending_bytes: 0,
            first_arrival: None,
            graph,
        }
    }

    /// Number of transactions waiting for a cut.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Id of the oldest pending transaction — the tag a leader puts on a
    /// cut marker so stale markers are recognised.
    #[must_use]
    pub fn first_pending(&self) -> Option<TxId> {
        self.pending.first().map(Transaction::id)
    }

    /// Feeds one ordered transaction; returns a full block
    /// when a deterministic condition (count or bytes) is met.
    ///
    /// `now` is the caller's clock reading (wall or simulated); it only
    /// marks when the oldest pending transaction arrived, which drives
    /// [`BlockCutter::wants_time_cut`].
    pub fn push(&mut self, tx: Transaction, now: Instant) -> Option<CutBlock> {
        if self.pending.is_empty() {
            self.first_arrival = Some(now);
        }
        if let Some(GraphEngine::Streaming(builder)) = &mut self.graph {
            builder.observe(&tx);
        }
        self.pending_bytes += tx.encoded_len();
        self.pending.push(tx);
        if self.pending.len() >= self.cfg.max_txns || self.pending_bytes >= self.cfg.max_bytes {
            return Some(self.cut());
        }
        None
    }

    /// Handles an ordered cut marker tagged with `first`: cuts the
    /// pending block iff its oldest transaction is still the one the
    /// leader saw when it ordered the marker. Returns `None` for stale
    /// markers — nothing pending, or an intervening count/byte cut
    /// already flushed the transactions the marker was meant for.
    pub fn cut_marker(&mut self, first: TxId) -> Option<CutBlock> {
        if self.first_pending() == Some(first) {
            Some(self.cut())
        } else {
            None
        }
    }

    /// Whether the *leader* should order a cut marker as of `now`: the
    /// oldest pending transaction has waited longer than `max_wait`.
    #[must_use]
    pub fn wants_time_cut(&self, now: Instant) -> bool {
        self.first_arrival.is_some_and(|t| {
            now.saturating_duration_since(t) >= self.cfg.max_wait && !self.pending.is_empty()
        })
    }

    /// The instant at which [`BlockCutter::wants_time_cut`] will turn
    /// true (`None` when nothing is pending). The deterministic scheduler
    /// advances virtual time to this deadline when the cluster is
    /// otherwise idle, so partial blocks are still cut under simulation.
    #[must_use]
    pub fn time_cut_deadline(&self) -> Option<Instant> {
        self.first_arrival.map(|t| t + self.cfg.max_wait)
    }

    fn cut(&mut self) -> CutBlock {
        self.pending_bytes = 0;
        self.first_arrival = None;
        let graph = match &mut self.graph {
            None => None,
            Some(GraphEngine::Streaming(builder)) => Some(builder.finish()),
            Some(GraphEngine::Batch(mode)) => {
                Some(DependencyGraph::build_txs(&self.pending, *mode))
            }
        };
        CutBlock {
            txs: std::mem::take(&mut self.pending),
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    use parblock_types::{AppId, ClientId, Key, RwSet, SeqNo};

    use super::*;

    fn tx(ts: u64, payload_len: usize) -> Transaction {
        Transaction::new(
            AppId(0),
            ClientId(1),
            ts,
            RwSet::default(),
            vec![0; payload_len],
        )
    }

    fn writer(ts: u64, key: u64) -> Transaction {
        Transaction::new(
            AppId(0),
            ClientId(1),
            ts,
            RwSet::write_only([Key(key)]),
            vec![],
        )
    }

    fn cfg(max_txns: usize, max_bytes: usize, max_wait_ms: u64) -> BlockCutConfig {
        BlockCutConfig {
            max_txns,
            max_bytes,
            max_wait: Duration::from_millis(max_wait_ms),
        }
    }

    #[test]
    fn cuts_on_transaction_count() {
        let mut cutter = BlockCutter::new(cfg(3, usize::MAX, 1000));
        assert!(cutter.push(tx(1, 0), Instant::now()).is_none());
        assert!(cutter.push(tx(2, 0), Instant::now()).is_none());
        let block = cutter.push(tx(3, 0), Instant::now()).expect("cut at 3");
        assert_eq!(block.txs.len(), 3);
        assert!(block.graph.is_none(), "no graph without a mode");
        assert_eq!(cutter.pending_len(), 0);
    }

    #[test]
    fn cuts_on_byte_size() {
        let mut cutter = BlockCutter::new(cfg(usize::MAX, 300, 1000));
        assert!(cutter.push(tx(1, 100), Instant::now()).is_none());
        let block = cutter.push(tx(2, 200), Instant::now()).expect("bytes exceeded");
        assert_eq!(block.txs.len(), 2);
    }

    #[test]
    fn cut_marker_flushes_pending() {
        let mut cutter = BlockCutter::new(cfg(100, usize::MAX, 1000));
        cutter.push(tx(1, 0), Instant::now());
        cutter.push(tx(2, 0), Instant::now());
        let first = cutter.first_pending().expect("pending");
        let block = cutter.cut_marker(first).expect("pending flushed");
        assert_eq!(block.txs.len(), 2);
        assert!(
            cutter.cut_marker(first).is_none(),
            "re-delivered marker ignored on empty cutter"
        );
    }

    #[test]
    fn stale_marker_after_intervening_count_cut_is_ignored() {
        // Regression: a marker ordered for {T1, T2} arrives *after* a
        // count cut already flushed them; T3 is freshly pending. The old
        // untagged marker would have cut a premature one-transaction
        // block here.
        let mut cutter = BlockCutter::new(cfg(2, usize::MAX, 1000));
        cutter.push(tx(1, 0), Instant::now());
        let marker_tag = cutter.first_pending().expect("T1 pending");
        let cut = cutter.push(tx(2, 0), Instant::now()).expect("count cut at 2");
        assert_eq!(cut.txs.len(), 2);

        cutter.push(tx(3, 0), Instant::now());
        assert!(
            cutter.cut_marker(marker_tag).is_none(),
            "stale marker must not cut the fresh block"
        );
        assert_eq!(cutter.pending_len(), 1, "T3 still pending");

        // A marker tagged for the *current* pending set does cut.
        let fresh_tag = cutter.first_pending().expect("T3 pending");
        let block = cutter.cut_marker(fresh_tag).expect("fresh marker cuts");
        assert_eq!(block.txs.len(), 1);
    }

    #[test]
    fn time_cut_requested_after_max_wait() {
        let mut cutter = BlockCutter::new(cfg(100, usize::MAX, 5));
        let t0 = Instant::now();
        assert!(!cutter.wants_time_cut(t0));
        assert_eq!(cutter.time_cut_deadline(), None);
        cutter.push(tx(1, 0), t0);
        assert!(!cutter.wants_time_cut(t0));
        assert_eq!(
            cutter.time_cut_deadline(),
            Some(t0 + Duration::from_millis(5))
        );
        // No sleeping: the clock is injected, so "later" is a value.
        let later = t0 + Duration::from_millis(7);
        assert!(cutter.wants_time_cut(later));
        let first = cutter.first_pending().expect("pending");
        let _ = cutter.cut_marker(first);
        assert!(!cutter.wants_time_cut(later));
        assert_eq!(cutter.time_cut_deadline(), None);
    }

    #[test]
    fn consecutive_blocks_preserve_order() {
        let mut cutter = BlockCutter::new(cfg(2, usize::MAX, 1000));
        // First block: arrival order 2, 1 (client timestamps do not
        // reorder the stream).
        assert!(cutter.push(tx(2, 0), Instant::now()).is_none());
        let b1 = cutter.push(tx(1, 0), Instant::now()).expect("first block");
        assert_eq!(b1.txs[0].id().client_ts, 2);
        assert_eq!(b1.txs[1].id().client_ts, 1);
        // Second block: arrival order 4, 3.
        assert!(cutter.push(tx(4, 0), Instant::now()).is_none());
        let b2 = cutter.push(tx(3, 0), Instant::now()).expect("second block");
        assert_eq!(b2.txs[0].id().client_ts, 4);
        assert_eq!(b2.txs[1].id().client_ts, 3);
    }

    #[test]
    fn streaming_cutter_attaches_graphs_and_resets_between_blocks() {
        let mut cutter = BlockCutter::with_graph(
            cfg(2, usize::MAX, 1000),
            DependencyMode::Reduced,
            GraphConstruction::Streaming,
        );
        // Block 1: two writers of key 7 — one edge.
        assert!(cutter.push(writer(1, 7), Instant::now()).is_none());
        let b1 = cutter.push(writer(2, 7), Instant::now()).expect("first block");
        let g1 = b1.graph.expect("graph attached");
        assert_eq!(g1.len(), 2);
        assert!(g1.has_edge(SeqNo(0), SeqNo(1)));

        // Block 2 touches the same key: the streaming index must have
        // been reset, so there is no edge to block 1's writers.
        assert!(cutter.push(writer(3, 7), Instant::now()).is_none());
        let b2 = cutter.push(writer(4, 9), Instant::now()).expect("second block");
        let g2 = b2.graph.expect("graph attached");
        assert_eq!(g2.len(), 2);
        assert_eq!(g2.edge_count(), 0, "index leaked across blocks");
    }

    #[test]
    fn streaming_and_batch_cutters_agree() {
        let feed = [writer(1, 1), writer(2, 1), writer(3, 2), writer(4, 1)];
        let mut graphs = Vec::new();
        for construction in [GraphConstruction::Streaming, GraphConstruction::Batch] {
            let mut cutter = BlockCutter::with_graph(
                cfg(4, usize::MAX, 1000),
                DependencyMode::Reduced,
                construction,
            );
            let mut cut = None;
            for tx in feed.iter().cloned() {
                cut = cut.or(cutter.push(tx, Instant::now()));
            }
            graphs.push(cut.expect("cut at 4").graph.expect("graph"));
        }
        assert_eq!(graphs[0], graphs[1]);
    }

    #[test]
    fn marker_cut_emits_graph_over_partial_block() {
        let mut cutter = BlockCutter::with_graph(
            cfg(100, usize::MAX, 1000),
            DependencyMode::Reduced,
            GraphConstruction::Streaming,
        );
        cutter.push(writer(1, 5), Instant::now());
        cutter.push(writer(2, 5), Instant::now());
        let first = cutter.first_pending().expect("pending");
        let block = cutter.cut_marker(first).expect("marker cuts");
        let graph = block.graph.expect("graph attached");
        assert_eq!(graph.len(), 2);
        assert_eq!(graph.edge_count(), 1);
    }
}
