//! End-to-end measurement: submit/commit timestamps, throughput and
//! latency reporting.
//!
//! Latency follows the paper's definition for OXII: "when the executors
//! execute the messages and receive enough number of matching results
//! from other executors, the transaction is counted as committed"
//! (§V-C) — i.e. submit-at-client → commit-at-observer-peer.
//!
//! # Coordinated omission
//!
//! Latency is stamped from each transaction's **intended** arrival time
//! ([`Metrics::record_submit_at`]), not the instant the driver actually
//! managed to send it. A driver that stalls — generation hiccup, sleep
//! overshoot, backpressure — submits late, and stamping at send time
//! would silently subtract exactly the queueing delay the percentiles
//! exist to expose (Tene's "coordinated omission"). With intended-time
//! stamping a stalled tick *inflates* the reported latency of every
//! delayed transaction instead of hiding it. The driver-side lag is
//! additionally surfaced as [`RunReport::driver_overruns`] /
//! [`RunReport::driver_max_lag`] so harness self-checks can tell driver
//! pathology apart from system queueing.
//!
//! # Measurement windows
//!
//! [`Metrics::set_measurement_window`] marks the `[begin, end)` span of
//! intended arrival times whose transactions count into the *measured*
//! rate and the latency percentiles; warm-up and cool-down traffic is
//! still tracked (and still commits) but contributes no samples. Without
//! a window every transaction is measured (the legacy behaviour).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use parblock_ledger::DurabilityStats;
use parblock_trace::{Histogram, Stage, TraceRecorder, TraceReport};
use parblock_types::{Clock, TxId};

/// Send lag at which a submission counts as a driver overrun — one
/// pacing tick of the open-loop driver.
const DRIVER_OVERRUN_LAG: Duration = Duration::from_millis(1);

/// Bound on the exact per-sample latency buffer: the first this many
/// measured commits keep exact samples, later ones land only in the
/// log-bucketed histogram (which sees *every* sample from the first).
/// The cap sits well above any pinned run's sample count, so historical
/// reports and their digests are unchanged; a sweep that does overflow
/// reports percentiles from the histogram — within one bucket (≤ 6.25%)
/// of the exact answer — instead of growing one `u64` per commit
/// forever.
const LATENCY_SAMPLE_CAP: usize = 65_536;

/// Shared metrics sink. Cloning shares the underlying state.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// The time source submit/commit stamps are taken from — the wall
    /// clock by default, the simulated clock under the deterministic
    /// scheduler so latency samples and the measurement window are a
    /// pure function of the schedule.
    clock: Clock,
    /// Intended arrival instant and whether the transaction falls inside
    /// the measurement window (always `true` when no window is set).
    submits: Mutex<HashMap<TxId, (Instant, bool)>>,
    /// `[begin, end)` of intended arrival times that count as measured.
    measure_window: Mutex<Option<(Instant, Instant)>>,
    /// Ids already counted as committed or aborted; re-observations
    /// (quorum re-delivery, duplicate COMMIT processing) must not
    /// double-count, and a transaction resolves exactly one way.
    resolved_ids: Mutex<HashSet<TxId>>,
    /// Latencies of committed transactions (µs), exact samples capped
    /// at [`LATENCY_SAMPLE_CAP`].
    latencies: Mutex<Vec<u64>>,
    /// Log-bucketed histogram over **all** measured latencies (µs),
    /// authoritative once the exact buffer overflows.
    latency_hist: Mutex<Histogram>,
    /// Measured samples that arrived after the exact buffer was full.
    latency_overflow: AtomicU64,
    /// Lifecycle recorder ([`Stage::Committed`] is stamped here, where
    /// commit dedup already lives; aborts drop their partial trace).
    trace: TraceRecorder,
    committed: AtomicU64,
    aborted: AtomicU64,
    blocks: AtomicU64,
    /// Driver-side open-loop accounting: total submissions, submissions
    /// whose intended arrival fell inside the measurement window, and
    /// commits of those measured submissions.
    submitted: AtomicU64,
    measured_submitted: AtomicU64,
    measured_committed: AtomicU64,
    /// Driver self-checks: submissions sent ≥ one pacing tick after
    /// their intended arrival, the worst such lag (µs), and arrivals
    /// shed by an admission-control cap instead of being submitted.
    driver_overruns: AtomicU64,
    driver_max_lag_us: AtomicU64,
    admission_shed: AtomicU64,
    first_submit: Mutex<Option<Instant>>,
    last_commit: Mutex<Option<Instant>>,
    state_digest: Mutex<Option<parblock_types::Hash32>>,
    ledger_head: Mutex<Option<parblock_types::Hash32>>,
    /// `pipeline_occupancy[d]` counts block starts observed with `d`
    /// blocks in flight (the just-started one included); index 0 unused.
    pipeline_occupancy: Mutex<Vec<u64>>,
    /// Time the observer's next block sat admitted-but-unstarted because
    /// the execution pipeline was full (µs), and how often that happened.
    boundary_stall_us: AtomicU64,
    boundary_stalls: AtomicU64,
    /// Optimistic-engine (Block-STM) counters on the observer: read-set
    /// validation checks, incarnations aborted by a failed check, and
    /// re-dispatched incarnations. All zero under the pessimistic engine.
    validation_passes: AtomicU64,
    spec_aborts: AtomicU64,
    re_executions: AtomicU64,
    /// Durability counters of the observer's executor (zeroes when
    /// running in-memory), set once when the executor shuts down.
    durability: Mutex<DurabilityStats>,
}

impl Metrics {
    /// Creates an empty sink stamping against the wall clock.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink stamping against `clock`. Under a simulated
    /// clock every duration in the resulting [`RunReport`] — latency
    /// samples, the measurement window, boundary stalls — is
    /// bit-deterministic for a given schedule.
    #[must_use]
    pub fn with_clock(clock: Clock) -> Self {
        Self::with_clock_and_trace(clock, TraceRecorder::default())
    }

    /// Creates an empty sink stamping against `clock` that also records
    /// the [`Stage::Committed`] lifecycle stage into `trace` (the
    /// commit-dedup logic lives here, so the trace inherits it).
    #[must_use]
    pub fn with_clock_and_trace(clock: Clock, trace: TraceRecorder) -> Self {
        Metrics {
            inner: Arc::new(Inner {
                clock,
                trace,
                ..Inner::default()
            }),
        }
    }

    /// Records a client submission (driver side), stamped at the current
    /// instant — for drivers with no arrival schedule (XOV endorsement
    /// flow, ad-hoc test submissions). Open-loop drivers use
    /// [`Metrics::record_submit_at`] instead.
    pub fn record_submit(&self, tx: TxId) {
        let now = self.inner.clock.now();
        self.record_submit_at(tx, now);
    }

    /// Records a client submission stamped at its **intended** arrival
    /// instant, which may be earlier than now if the driver is running
    /// behind schedule — the commit latency then includes the driver-side
    /// queueing delay instead of silently omitting it (see the module
    /// docs on coordinated omission). Send lag of at least one pacing
    /// tick is counted as a driver overrun.
    pub fn record_submit_at(&self, tx: TxId, intended: Instant) {
        let now = self.inner.clock.now();
        let lag = now.saturating_duration_since(intended);
        if lag >= DRIVER_OVERRUN_LAG {
            self.inner.driver_overruns.fetch_add(1, Ordering::Relaxed);
        }
        self.inner
            .driver_max_lag_us
            .fetch_max(lag.as_micros() as u64, Ordering::Relaxed);
        let measured = self
            .inner
            .measure_window
            .lock()
            .is_none_or(|(begin, end)| intended >= begin && intended < end);
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        if measured {
            self.inner.measured_submitted.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.submits.lock().insert(tx, (intended, measured));
        let mut first = self.inner.first_submit.lock();
        if first.is_none() {
            *first = Some(intended);
        }
    }

    /// Marks the `[begin, end)` span of intended arrival times whose
    /// transactions count into [`RunReport::measured_submitted`] /
    /// [`RunReport::measured_committed`] and the latency samples. Call
    /// before the first submission; traffic outside the window (warm-up,
    /// cool-down) is tracked but contributes no samples.
    pub fn set_measurement_window(&self, begin: Instant, end: Instant) {
        *self.inner.measure_window.lock() = Some((begin, end));
    }

    /// Records one arrival shed by the driver's admission-control cap
    /// (never submitted, so it can neither commit nor count as
    /// outstanding — only this counter remembers it).
    pub fn record_admission_shed(&self) {
        self.inner.admission_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a commit observed at the designated observer peer.
    ///
    /// Each transaction id is counted **once**: a re-observed commit
    /// (e.g. duplicate quorum delivery) is ignored entirely, so the
    /// committed count and the latency samples stay in step. Unknown
    /// transaction ids (e.g. warm-up traffic submitted before
    /// measurement started) are counted but contribute no latency sample.
    pub fn record_commit(&self, tx: TxId) {
        if !self.inner.resolved_ids.lock().insert(tx) {
            return;
        }
        let now = self.inner.clock.now();
        self.inner.trace.record_at(tx, Stage::Committed, now);
        self.inner.committed.fetch_add(1, Ordering::Relaxed);
        if let Some((intended, measured)) = self.inner.submits.lock().remove(&tx) {
            if measured {
                let micros = now.saturating_duration_since(intended).as_micros() as u64;
                self.inner.latency_hist.lock().record(micros);
                let mut latencies = self.inner.latencies.lock();
                if latencies.len() < LATENCY_SAMPLE_CAP {
                    latencies.push(micros);
                } else {
                    self.inner.latency_overflow.fetch_add(1, Ordering::Relaxed);
                }
                drop(latencies);
                self.inner.measured_committed.fetch_add(1, Ordering::Relaxed);
            }
        }
        *self.inner.last_commit.lock() = Some(now);
    }

    /// Records an abort observed at the observer peer (XOV validation
    /// failures, contract-level rejections). Deduplicated like
    /// [`Metrics::record_commit`]: a re-observed abort, or an abort for a
    /// transaction already counted as committed, is ignored.
    pub fn record_abort(&self, tx: TxId) {
        if !self.inner.resolved_ids.lock().insert(tx) {
            return;
        }
        self.inner.aborted.fetch_add(1, Ordering::Relaxed);
        self.inner.submits.lock().remove(&tx);
        self.inner.trace.drop_tx(tx);
    }

    /// Records a block fully processed at the observer.
    pub fn record_block(&self) {
        self.inner.blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of committed transactions so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.inner.committed.load(Ordering::Relaxed)
    }

    /// Number of processed (committed + aborted) transactions so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.inner.committed.load(Ordering::Relaxed) + self.inner.aborted.load(Ordering::Relaxed)
    }

    /// Submitted transactions that have neither committed nor aborted —
    /// in-flight during a run; dropped (fault injection) once it ends.
    /// Without [`Metrics::report`]'s pruning these entries would
    /// accumulate in the submit map for as long as the sink lives.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.inner.submits.lock().len() as u64
    }

    /// Records the observer's state digest after a block (see
    /// `ClusterSpec::capture_state`).
    pub fn set_state_digest(&self, digest: parblock_types::Hash32) {
        *self.inner.state_digest.lock() = Some(digest);
    }

    /// Records the observer's ledger head hash after a block append. The
    /// hash chain covers block contents *and* order, so two runs with
    /// equal heads committed the same blocks in the same order.
    pub fn set_ledger_head(&self, head: parblock_types::Hash32) {
        *self.inner.ledger_head.lock() = Some(head);
    }

    /// Records how many blocks were in flight on the observer's executor
    /// when a block started (the started block included, so depth-1
    /// execution always records 1).
    pub fn record_pipeline_occupancy(&self, in_flight: usize) {
        let mut occupancy = self.inner.pipeline_occupancy.lock();
        if occupancy.len() <= in_flight {
            occupancy.resize(in_flight + 1, 0);
        }
        occupancy[in_flight] += 1;
    }

    /// Records the observer executor's durability counters (WAL bytes,
    /// fsyncs, checkpoints, recovery replay length). Called once at
    /// executor shutdown; all zeroes under in-memory durability.
    pub fn set_durability_stats(&self, stats: DurabilityStats) {
        *self.inner.durability.lock() = stats;
    }

    /// Records one read-set validation check by the optimistic engine
    /// (at the validation cursor — the check that decides finality).
    pub fn record_validation_pass(&self) {
        self.inner.validation_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one speculative incarnation aborted because a recorded
    /// read no longer resolved identically.
    pub fn record_spec_abort(&self) {
        self.inner.spec_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one re-dispatched incarnation (incarnation > 0) of an
    /// aborted speculative execution.
    pub fn record_re_execution(&self) {
        self.inner.re_executions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one boundary stall: the observer's next block was admitted
    /// and ready, but the execution pipeline was at capacity for `stall`.
    pub fn record_boundary_stall(&self, stall: Duration) {
        self.inner
            .boundary_stall_us
            .fetch_add(stall.as_micros() as u64, Ordering::Relaxed);
        self.inner.boundary_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the sink into a report.
    ///
    /// Pruning: submissions still unmatched at report time (dropped by
    /// the network under fault injection, or in flight when the run
    /// ended) are counted into [`RunReport::outstanding`] and **removed**
    /// from the submit map, and the commit/abort dedup set is released,
    /// so a long-lived sink does not keep per-transaction state past the
    /// end of a run. (The aggregate counters stay monotonic; per-run
    /// measurements should use a fresh sink, as the runner does.)
    #[must_use]
    pub fn report(&self) -> RunReport {
        let outstanding = {
            let mut submits = self.inner.submits.lock();
            let n = submits.len() as u64;
            submits.clear();
            submits.shrink_to_fit();
            n
        };
        {
            let mut resolved = self.inner.resolved_ids.lock();
            resolved.clear();
            resolved.shrink_to_fit();
        }
        let mut latencies = self.inner.latencies.lock().clone();
        latencies.sort_unstable();
        let window = match (
            *self.inner.first_submit.lock(),
            *self.inner.last_commit.lock(),
        ) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => Duration::ZERO,
        };
        let durability = *self.inner.durability.lock();
        let measure_window = self
            .inner
            .measure_window
            .lock()
            .map_or(Duration::ZERO, |(begin, end)| {
                end.saturating_duration_since(begin)
            });
        RunReport {
            committed: self.inner.committed.load(Ordering::Relaxed),
            aborted: self.inner.aborted.load(Ordering::Relaxed),
            outstanding,
            blocks: self.inner.blocks.load(Ordering::Relaxed),
            window,
            latencies_us: latencies,
            latency_hist: self.inner.latency_hist.lock().clone(),
            latency_overflow: self.inner.latency_overflow.load(Ordering::Relaxed),
            trace: TraceReport::default(),
            state_digest: *self.inner.state_digest.lock(),
            ledger_head: *self.inner.ledger_head.lock(),
            pipeline_occupancy: self.inner.pipeline_occupancy.lock().clone(),
            boundary_stall: Duration::from_micros(
                self.inner.boundary_stall_us.load(Ordering::Relaxed),
            ),
            boundary_stalls: self.inner.boundary_stalls.load(Ordering::Relaxed),
            wal_bytes_written: durability.wal_bytes_written,
            fsync_count: durability.fsync_count,
            checkpoint_count: durability.checkpoint_count,
            recovery_replay_len: durability.recovery_replay_len,
            messages: 0,
            validation_passes: self.inner.validation_passes.load(Ordering::Relaxed),
            aborts: self.inner.spec_aborts.load(Ordering::Relaxed),
            re_executions: self.inner.re_executions.load(Ordering::Relaxed),
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            measured_submitted: self.inner.measured_submitted.load(Ordering::Relaxed),
            measured_committed: self.inner.measured_committed.load(Ordering::Relaxed),
            measure_window,
            driver_overruns: self.inner.driver_overruns.load(Ordering::Relaxed),
            driver_max_lag: Duration::from_micros(
                self.inner.driver_max_lag_us.load(Ordering::Relaxed),
            ),
            admission_shed: self.inner.admission_shed.load(Ordering::Relaxed),
        }
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Transactions committed at the observer.
    pub committed: u64,
    /// Transactions aborted at the observer.
    pub aborted: u64,
    /// Submitted transactions that never reached a commit or abort by the
    /// end of the run (lost to fault injection, or still in flight).
    pub outstanding: u64,
    /// Blocks processed at the observer.
    pub blocks: u64,
    /// First submission → last commit.
    pub window: Duration,
    /// Sorted commit latencies in microseconds — exact samples, capped
    /// at the first 65 536 measured commits (see
    /// [`RunReport::latency_overflow`]).
    pub latencies_us: Vec<u64>,
    /// Log-bucketed histogram over **all** measured latencies (µs).
    /// When [`RunReport::latency_overflow`] is nonzero the percentile
    /// accessors read from here instead of the truncated exact buffer.
    pub latency_hist: parblock_trace::Histogram,
    /// Measured commits whose exact sample was dropped by the buffer
    /// cap (they still count in [`RunReport::latency_hist`]).
    pub latency_overflow: u64,
    /// Per-transaction lifecycle trace: stage-pair latency histograms
    /// and sampled timelines (DESIGN.md §14). Default/empty unless the
    /// spec enabled tracing; filled in by the runner alongside
    /// [`RunReport::messages`].
    pub trace: parblock_trace::TraceReport,
    /// Observer's final state digest (when capture was enabled).
    pub state_digest: Option<parblock_types::Hash32>,
    /// Observer's final ledger head hash — equal heads mean the same
    /// blocks were committed in the same order.
    pub ledger_head: Option<parblock_types::Hash32>,
    /// `pipeline_occupancy[d]` = block starts at the observer with `d`
    /// blocks in flight (index 0 unused); `[0, n, 0, …]` means strictly
    /// block-at-a-time execution.
    pub pipeline_occupancy: Vec<u64>,
    /// Total time the observer's next block sat ready but unstarted
    /// because the execution pipeline was full.
    pub boundary_stall: Duration,
    /// Number of boundary stalls behind [`RunReport::boundary_stall`].
    pub boundary_stalls: u64,
    /// Bytes the observer's executor appended to its write-ahead log
    /// (zero under in-memory durability).
    pub wal_bytes_written: u64,
    /// Fsync barriers the observer's executor issued (WAL group
    /// commits, block seals, checkpoint publishes).
    pub fsync_count: u64,
    /// State checkpoints the observer's executor wrote.
    pub checkpoint_count: u64,
    /// WAL records the observer's executor replayed above its checkpoint
    /// when it recovered at startup (zero for a fresh store).
    pub recovery_replay_len: u64,
    /// Total network messages sent during the run (filled by the runner;
    /// the commit-batching ablation compares this across strategies).
    pub messages: u64,
    /// Read-set validation checks performed by the optimistic engine at
    /// the observer (zero under the pessimistic scheduler).
    pub validation_passes: u64,
    /// Speculative incarnations aborted by a failed validation check.
    /// Distinct from [`RunReport::aborted`]: these transactions re-execute
    /// and (normally) still commit.
    pub aborts: u64,
    /// Re-dispatched incarnations (every abort that was retried).
    pub re_executions: u64,
    /// Total client submissions recorded by the sink (all phases).
    pub submitted: u64,
    /// Submissions whose intended arrival fell inside the measurement
    /// window (equals [`RunReport::submitted`] when no window was set).
    pub measured_submitted: u64,
    /// Commits of measured submissions — the numerator of
    /// [`RunReport::achieved_tps`], and exactly the population the
    /// latency percentiles are drawn from (plus any measured
    /// transactions still outstanding; report those alongside the
    /// percentiles or the tail is survivor-biased).
    pub measured_committed: u64,
    /// Length of the `[begin, end)` measurement window (zero when none
    /// was set and every transaction was measured).
    pub measure_window: Duration,
    /// Submissions sent ≥ one pacing tick after their intended arrival —
    /// the driver, not the system, was behind. A healthy open-loop run
    /// keeps this near zero; see the module docs on coordinated omission.
    pub driver_overruns: u64,
    /// Worst send lag behind the intended arrival schedule.
    pub driver_max_lag: Duration,
    /// Arrivals shed by the driver's admission-control cap (never
    /// submitted; excluded from every other counter).
    pub admission_shed: u64,
}

impl RunReport {
    /// A digest over every field of the report, for bit-reproducibility
    /// checks: two deterministic-simulation runs of the same seed must
    /// produce byte-identical reports, and comparing 32 bytes is how the
    /// explorer (and CI) asserts that without diffing structures.
    #[must_use]
    pub fn digest(&self) -> parblock_types::Hash32 {
        use parblock_types::wire::Wire;
        let mut bytes = Vec::new();
        self.committed.encode(&mut bytes);
        self.aborted.encode(&mut bytes);
        self.outstanding.encode(&mut bytes);
        self.blocks.encode(&mut bytes);
        (self.window.as_nanos() as u64).encode(&mut bytes);
        (self.latencies_us.len() as u64).encode(&mut bytes);
        for &l in &self.latencies_us {
            l.encode(&mut bytes);
        }
        for digest in [self.state_digest, self.ledger_head] {
            match digest {
                Some(h) => bytes.extend_from_slice(&h.0),
                None => bytes.push(0),
            }
        }
        (self.pipeline_occupancy.len() as u64).encode(&mut bytes);
        for &o in &self.pipeline_occupancy {
            o.encode(&mut bytes);
        }
        (self.boundary_stall.as_nanos() as u64).encode(&mut bytes);
        self.boundary_stalls.encode(&mut bytes);
        self.wal_bytes_written.encode(&mut bytes);
        self.fsync_count.encode(&mut bytes);
        self.checkpoint_count.encode(&mut bytes);
        self.recovery_replay_len.encode(&mut bytes);
        self.messages.encode(&mut bytes);
        // Speculation counters entered the report after seeds were pinned
        // on the old encoding: encode them only when set, so pessimistic
        // (and historical) reports keep byte-identical digests.
        if self.validation_passes != 0 || self.aborts != 0 || self.re_executions != 0 {
            self.validation_passes.encode(&mut bytes);
            self.aborts.encode(&mut bytes);
            self.re_executions.encode(&mut bytes);
        }
        // Same convention for the open-loop driver counters (added later
        // still): an all-zero group keeps the historical encoding.
        let driver_group = [
            self.submitted,
            self.measured_submitted,
            self.measured_committed,
            self.measure_window.as_nanos() as u64,
            self.driver_overruns,
            self.driver_max_lag.as_nanos() as u64,
            self.admission_shed,
        ];
        if driver_group.iter().any(|&v| v != 0) {
            for v in driver_group {
                v.encode(&mut bytes);
            }
        }
        // Latency-buffer overflow (added with the sample cap): runs
        // small enough to keep every exact sample — all historical runs
        // — encode nothing new.
        if self.latency_overflow != 0 {
            self.latency_overflow.encode(&mut bytes);
            self.latency_hist.encode_into(&mut bytes);
        }
        // Lifecycle trace (DESIGN.md §14), gated the same way: only
        // runs that enabled tracing encode the group, so every
        // pre-tracing digest stays byte-identical.
        if self.trace.is_active() {
            self.trace.encode_into(&mut bytes);
        }
        parblock_crypto::sha256(&bytes)
    }

    /// Committed transactions per second over the measurement window.
    #[must_use]
    pub fn throughput_tps(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.window.as_secs_f64()
    }

    /// Achieved throughput over the *measurement* window: commits of
    /// measured submissions divided by the window length. Falls back to
    /// [`RunReport::throughput_tps`] when no window was set. This is the
    /// rate the saturation sweep compares against the offered rate.
    #[must_use]
    pub fn achieved_tps(&self) -> f64 {
        if self.measure_window.is_zero() {
            return self.throughput_tps();
        }
        self.measured_committed as f64 / self.measure_window.as_secs_f64()
    }

    /// Mean end-to-end latency (over every measured sample — the
    /// histogram sees samples the capped exact buffer dropped).
    #[must_use]
    pub fn avg_latency(&self) -> Duration {
        if self.latency_overflow != 0 {
            return Duration::from_micros(self.latency_hist.mean());
        }
        if self.latencies_us.is_empty() {
            return Duration::ZERO;
        }
        let sum: u64 = self.latencies_us.iter().sum();
        Duration::from_micros(sum / self.latencies_us.len() as u64)
    }

    /// Latency percentile (`p` in `0.0..=1.0`), by the nearest-rank
    /// definition: the smallest sample such that at least `p·N` samples
    /// are ≤ it (`p = 0` returns the minimum). Unlike interpolating or
    /// rounding definitions this always returns an observed sample and
    /// never understates the tail: p99 over 100 samples is the 99th
    /// smallest, not a blend with the 100th.
    ///
    /// When the exact buffer overflowed its cap the percentile is read
    /// from the histogram instead (which saw every sample) — within one
    /// log bucket (≤ 6.25%) of the exact nearest-rank answer.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Duration {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.latency_overflow != 0 {
            return Duration::from_micros(self.latency_hist.percentile(p));
        }
        let n = self.latencies_us.len();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = (p * n as f64).ceil() as usize;
        let idx = rank.max(1) - 1;
        Duration::from_micros(self.latencies_us[idx.min(n - 1)])
    }

    /// The deepest pipeline overlap the observer recorded: the largest
    /// number of simultaneously in-flight blocks at any block start
    /// (0 when no block started). Strictly block-at-a-time execution
    /// yields 1.
    #[must_use]
    pub fn max_occupancy(&self) -> usize {
        self.pipeline_occupancy
            .iter()
            .rposition(|&count| count > 0)
            .unwrap_or(0)
    }

    /// Abort rate among processed transactions.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            return 0.0;
        }
        self.aborted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::ClientId;

    use super::*;

    fn tx(n: u64) -> TxId {
        TxId::new(ClientId(0), n)
    }

    #[test]
    fn submit_commit_produces_latency_sample() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        std::thread::sleep(Duration::from_millis(2));
        m.record_commit(tx(1));
        let r = m.report();
        assert_eq!(r.committed, 1);
        assert_eq!(r.latencies_us.len(), 1);
        assert!(r.avg_latency() >= Duration::from_millis(2));
        assert!(r.throughput_tps() > 0.0);
    }

    #[test]
    fn unknown_commit_counts_without_latency() {
        let m = Metrics::new();
        m.record_commit(tx(9));
        let r = m.report();
        assert_eq!(r.committed, 1);
        assert!(r.latencies_us.is_empty());
        assert_eq!(r.avg_latency(), Duration::ZERO);
    }

    #[test]
    fn aborts_tracked_separately() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        m.record_abort(tx(1));
        m.record_submit(tx(2));
        m.record_commit(tx(2));
        let r = m.report();
        assert_eq!(r.aborted, 1);
        assert_eq!(r.committed, 1);
        assert!((r.abort_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn duplicate_commit_counts_once() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        m.record_commit(tx(1));
        m.record_commit(tx(1));
        assert_eq!(m.committed(), 1, "re-observed commit double-counted");
        let r = m.report();
        assert_eq!(r.committed, 1);
        assert_eq!(r.latencies_us.len(), 1);
    }

    #[test]
    fn duplicate_abort_counts_once_and_commit_wins_over_late_abort() {
        let m = Metrics::new();
        m.record_abort(tx(1));
        m.record_abort(tx(1));
        let r = m.report();
        assert_eq!(r.aborted, 1, "re-observed abort double-counted");

        let m = Metrics::new();
        m.record_commit(tx(2));
        m.record_abort(tx(2));
        assert_eq!(m.committed(), 1);
        assert_eq!(m.report().aborted, 0, "a resolved tx must not re-resolve");
    }

    #[test]
    fn outstanding_submits_are_pruned_at_report_time() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        m.record_submit(tx(2));
        m.record_submit(tx(3));
        m.record_commit(tx(1));
        assert_eq!(m.outstanding(), 2, "two submits never resolved");
        let r = m.report();
        assert_eq!(r.outstanding, 2);
        assert_eq!(
            m.outstanding(),
            0,
            "report must prune dropped submissions from the map"
        );
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let r = RunReport {
            committed: 100,
            blocks: 1,
            window: Duration::from_secs(1),
            latencies_us: (1..=100).collect(),
            ..RunReport::default()
        };
        // Nearest rank: the k-th percentile of 1..=100 is exactly k.
        assert_eq!(r.latency_percentile(0.0), Duration::from_micros(1));
        assert_eq!(r.latency_percentile(1.0), Duration::from_micros(100));
        assert_eq!(r.latency_percentile(0.5), Duration::from_micros(50));
        assert_eq!(r.latency_percentile(0.99), Duration::from_micros(99));
        assert_eq!(r.latency_percentile(0.999), Duration::from_micros(100));
        assert_eq!(r.avg_latency(), Duration::from_micros(50));
    }

    #[test]
    fn nearest_rank_on_tiny_samples() {
        let one = RunReport {
            latencies_us: vec![7],
            ..RunReport::default()
        };
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.latency_percentile(p), Duration::from_micros(7));
        }
        let two = RunReport {
            latencies_us: vec![3, 9],
            ..RunReport::default()
        };
        assert_eq!(two.latency_percentile(0.5), Duration::from_micros(3));
        assert_eq!(two.latency_percentile(0.51), Duration::from_micros(9));
    }

    #[test]
    fn empty_report_is_zeroes() {
        let r = Metrics::new().report();
        assert_eq!(r.throughput_tps(), 0.0);
        assert_eq!(r.latency_percentile(0.9), Duration::ZERO);
        assert_eq!(r.abort_rate(), 0.0);
        assert!(r.pipeline_occupancy.is_empty());
        assert_eq!(r.boundary_stall, Duration::ZERO);
        assert_eq!(r.ledger_head, None);
    }

    #[test]
    fn pipeline_occupancy_and_stalls_accumulate() {
        let m = Metrics::new();
        m.record_pipeline_occupancy(1);
        m.record_pipeline_occupancy(2);
        m.record_pipeline_occupancy(2);
        m.record_boundary_stall(Duration::from_micros(300));
        m.record_boundary_stall(Duration::from_micros(200));
        let r = m.report();
        assert_eq!(r.pipeline_occupancy, vec![0, 1, 2]);
        assert_eq!(r.max_occupancy(), 2);
        assert_eq!(r.boundary_stall, Duration::from_micros(500));
        assert_eq!(r.boundary_stalls, 2);
        assert_eq!(Metrics::new().report().max_occupancy(), 0);
    }

    #[test]
    fn durability_stats_flow_into_report() {
        let m = Metrics::new();
        assert_eq!(m.report().fsync_count, 0);
        m.set_durability_stats(DurabilityStats {
            wal_bytes_written: 100,
            fsync_count: 7,
            checkpoint_count: 2,
            recovery_replay_len: 42,
        });
        let r = m.report();
        assert_eq!(r.wal_bytes_written, 100);
        assert_eq!(r.fsync_count, 7);
        assert_eq!(r.checkpoint_count, 2);
        assert_eq!(r.recovery_replay_len, 42);
    }

    #[test]
    fn ledger_head_records_latest() {
        let m = Metrics::new();
        m.set_ledger_head(parblock_types::Hash32([1; 32]));
        m.set_ledger_head(parblock_types::Hash32([2; 32]));
        assert_eq!(m.report().ledger_head, Some(parblock_types::Hash32([2; 32])));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 1]")]
    fn invalid_percentile_panics() {
        let _ = Metrics::new().report().latency_percentile(1.5);
    }

    #[test]
    fn speculation_counters_flow_into_report_and_digest() {
        let m = Metrics::new();
        let baseline = m.report().digest();
        m.record_validation_pass();
        m.record_validation_pass();
        m.record_spec_abort();
        m.record_re_execution();
        let r = m.report();
        assert_eq!(r.validation_passes, 2);
        assert_eq!(r.aborts, 1);
        assert_eq!(r.re_executions, 1);
        assert_ne!(r.digest(), baseline, "speculation work must be visible");
    }

    #[test]
    fn zero_speculation_counters_keep_the_historical_digest() {
        // The digest encoding predates the speculation counters; a report
        // with all three at zero must hash exactly as it did before they
        // existed (pinned regression seeds depend on it).
        let mut r = Metrics::new().report();
        let legacy = r.digest();
        r.validation_passes = 1;
        assert_ne!(r.digest(), legacy);
        r.validation_passes = 0;
        assert_eq!(r.digest(), legacy);
    }

    #[test]
    fn stalled_submit_inflates_latency_instead_of_hiding_it() {
        // Coordinated omission: the driver intended to send at t=0 but
        // only managed at t=5ms; the commit at t=6ms must report 6ms of
        // latency (queueing included), not the 1ms since the send.
        let clock = Clock::simulated();
        let m = Metrics::with_clock(clock.clone());
        let intended = clock.now();
        clock.advance(Duration::from_millis(5));
        m.record_submit_at(tx(1), intended);
        clock.advance(Duration::from_millis(1));
        m.record_commit(tx(1));
        let r = m.report();
        assert_eq!(r.latencies_us, vec![6_000], "latency must include the stall");
        assert_eq!(r.driver_overruns, 1, "a 5ms send lag is an overrun");
        assert_eq!(r.driver_max_lag, Duration::from_millis(5));

        // An on-schedule submit is not an overrun.
        let m = Metrics::with_clock(clock.clone());
        m.record_submit_at(tx(2), clock.now());
        m.record_commit(tx(2));
        let r = m.report();
        assert_eq!(r.driver_overruns, 0);
        assert_eq!(r.driver_max_lag, Duration::ZERO);
    }

    #[test]
    fn measurement_window_filters_samples_but_not_commits() {
        let clock = Clock::simulated();
        let m = Metrics::with_clock(clock.clone());
        let start = clock.now();
        m.set_measurement_window(
            start + Duration::from_millis(10),
            start + Duration::from_millis(20),
        );
        // Warm-up (before), measured (inside), cool-down (at end, exclusive).
        m.record_submit_at(tx(1), start);
        m.record_submit_at(tx(2), start + Duration::from_millis(10));
        m.record_submit_at(tx(3), start + Duration::from_millis(20));
        clock.advance(Duration::from_millis(25));
        m.record_commit(tx(1));
        m.record_commit(tx(2));
        m.record_commit(tx(3));
        let r = m.report();
        assert_eq!(r.committed, 3, "warm-up traffic still commits");
        assert_eq!(r.submitted, 3);
        assert_eq!(r.measured_submitted, 1, "only the in-window arrival");
        assert_eq!(r.measured_committed, 1);
        assert_eq!(
            r.latencies_us.len(),
            1,
            "warm-up/cool-down must not contribute samples"
        );
        assert_eq!(r.latencies_us[0], 15_000, "stamped from intended arrival");
        assert_eq!(r.measure_window, Duration::from_millis(10));
        assert!((r.achieved_tps() - 100.0).abs() < 1e-9, "1 commit / 10 ms");
    }

    #[test]
    fn no_window_measures_everything() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        m.record_commit(tx(1));
        let r = m.report();
        assert_eq!(r.submitted, 1);
        assert_eq!(r.measured_submitted, 1);
        assert_eq!(r.measured_committed, 1);
        assert_eq!(r.measure_window, Duration::ZERO);
    }

    #[test]
    fn admission_shed_is_counted_separately() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        m.record_admission_shed();
        m.record_admission_shed();
        let r = m.report();
        assert_eq!(r.admission_shed, 2);
        assert_eq!(r.submitted, 1, "shed arrivals were never submitted");
    }

    #[test]
    fn zero_driver_counters_keep_the_historical_digest() {
        // Same convention as the speculation counters: the open-loop
        // driver fields entered the report after seeds were pinned, so an
        // all-zero group must hash exactly as before they existed.
        let mut r = RunReport::default();
        let legacy = r.digest();
        r.driver_overruns = 1;
        assert_ne!(r.digest(), legacy);
        r.driver_overruns = 0;
        r.measure_window = Duration::from_secs(1);
        assert_ne!(r.digest(), legacy);
        r.measure_window = Duration::ZERO;
        assert_eq!(r.digest(), legacy);
    }

    #[test]
    fn simulated_clock_makes_latencies_exact() {
        let clock = Clock::simulated();
        let m = Metrics::with_clock(clock.clone());
        m.record_submit(tx(1));
        clock.advance(Duration::from_micros(1234));
        m.record_commit(tx(1));
        let r = m.report();
        assert_eq!(r.latencies_us, vec![1234], "no wall-clock drift");
        assert_eq!(r.window, Duration::from_micros(1234));
    }

    #[test]
    fn overflowing_latency_buffer_keeps_percentiles_within_one_bucket() {
        // Push 10% past the exact-sample cap; percentiles must then come
        // from the histogram and stay within one log bucket (≤ 6.25%
        // relative error, exact below 16 µs) of the full sorted-vec
        // answer.
        let clock = Clock::simulated();
        clock.advance(Duration::from_secs(10));
        let m = Metrics::with_clock(clock.clone());
        let total = LATENCY_SAMPLE_CAP + LATENCY_SAMPLE_CAP / 10;
        let mut exact: Vec<u64> = Vec::with_capacity(total);
        let mut rng: u64 = 7;
        let now = clock.now();
        for i in 0..total {
            // LCG latencies spanning 0..~1 s keep every octave populated.
            rng = rng.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            let lat = rng >> 44; // 0..2^20 µs
            exact.push(lat);
            m.record_submit_at(tx(i as u64), now - Duration::from_micros(lat));
            m.record_commit(tx(i as u64));
        }
        let r = m.report();
        assert_eq!(r.latency_overflow as usize, total - LATENCY_SAMPLE_CAP);
        assert_eq!(r.latencies_us.len(), LATENCY_SAMPLE_CAP);
        assert_eq!(r.latency_hist.count() as usize, total, "histogram sees every sample");
        exact.sort_unstable();
        for p in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((p * total as f64).ceil() as usize).max(1) - 1;
            let want = exact[rank.min(total - 1)];
            let got = r.latency_percentile(p).as_micros() as u64;
            assert!(
                got.abs_diff(want) as f64 <= want as f64 / 16.0 + 1.0,
                "p{p}: histogram {got} vs exact {want}"
            );
        }
        // The overflow group participates in the digest.
        let mut pinned = RunReport::default();
        let legacy = pinned.digest();
        pinned.latency_overflow = 1;
        assert_ne!(pinned.digest(), legacy);
    }

    #[test]
    fn under_cap_runs_keep_exact_percentiles_and_legacy_digest() {
        let clock = Clock::simulated();
        let m = Metrics::with_clock(clock.clone());
        m.record_submit(tx(1));
        clock.advance(Duration::from_micros(17));
        m.record_commit(tx(1));
        let r = m.report();
        assert_eq!(r.latency_overflow, 0);
        assert_eq!(r.latency_percentile(1.0), Duration::from_micros(17), "exact path");
        assert_eq!(r.latency_hist.count(), 1, "histogram fed in parallel");
        // A populated histogram alone (no overflow, no trace) encodes
        // nothing new: byte-stable with a report that predates it.
        let mut stripped = r.clone();
        stripped.latency_hist = Histogram::default();
        assert_eq!(r.digest(), stripped.digest());
    }

    #[test]
    fn inactive_trace_keeps_the_historical_digest() {
        let mut r = RunReport::default();
        let legacy = r.digest();
        assert!(!r.trace.is_active());
        r.trace.enabled = true;
        assert_ne!(r.digest(), legacy, "an enabled trace must be visible");
        r.trace = TraceReport::default();
        assert_eq!(r.digest(), legacy);
    }

    #[test]
    fn committed_stage_and_abort_drop_flow_into_the_trace() {
        let clock = Clock::simulated();
        let trace = TraceRecorder::new(&clock, parblock_trace::TraceConfig::on());
        let m = Metrics::with_clock_and_trace(clock.clone(), trace.clone());
        m.record_submit(tx(1));
        clock.advance(Duration::from_micros(40));
        m.record_commit(tx(1));
        m.record_commit(tx(1)); // dedup: no second Committed stamp
        trace.record_durable_block([tx(1)]);
        m.record_submit(tx(2));
        trace.record(tx(2), Stage::Submitted); // the driver stamps this
        m.record_abort(tx(2));
        let t = trace.snapshot();
        assert_eq!(t.finished, 1);
        assert_eq!(t.aborted, 1, "aborts drop their partial trace");
        let pair = t.pair(Stage::Committed, Stage::Durable).expect("pair");
        assert_eq!(pair.count(), 1);
    }

    #[test]
    fn report_digest_reflects_content() {
        let clock = Clock::simulated();
        let run = || {
            let m = Metrics::with_clock(clock.clone());
            m.record_submit(tx(1));
            m.record_commit(tx(1));
            m.record_block();
            m.report()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.digest(), b.digest(), "identical runs share a digest");
        let m = Metrics::with_clock(clock.clone());
        m.record_submit(tx(1));
        m.record_abort(tx(1));
        assert_ne!(a.digest(), m.report().digest());
    }
}
