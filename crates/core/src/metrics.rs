//! End-to-end measurement: submit/commit timestamps, throughput and
//! latency reporting.
//!
//! Latency follows the paper's definition for OXII: "when the executors
//! execute the messages and receive enough number of matching results
//! from other executors, the transaction is counted as committed"
//! (§V-C) — i.e. submit-at-client → commit-at-observer-peer.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use parblock_ledger::DurabilityStats;
use parblock_types::{Clock, TxId};

/// Shared metrics sink. Cloning shares the underlying state.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// The time source submit/commit stamps are taken from — the wall
    /// clock by default, the simulated clock under the deterministic
    /// scheduler so latency samples and the measurement window are a
    /// pure function of the schedule.
    clock: Clock,
    submits: Mutex<HashMap<TxId, Instant>>,
    /// Ids already counted as committed or aborted; re-observations
    /// (quorum re-delivery, duplicate COMMIT processing) must not
    /// double-count, and a transaction resolves exactly one way.
    resolved_ids: Mutex<HashSet<TxId>>,
    /// Latencies of committed transactions (µs).
    latencies: Mutex<Vec<u64>>,
    committed: AtomicU64,
    aborted: AtomicU64,
    blocks: AtomicU64,
    first_submit: Mutex<Option<Instant>>,
    last_commit: Mutex<Option<Instant>>,
    state_digest: Mutex<Option<parblock_types::Hash32>>,
    ledger_head: Mutex<Option<parblock_types::Hash32>>,
    /// `pipeline_occupancy[d]` counts block starts observed with `d`
    /// blocks in flight (the just-started one included); index 0 unused.
    pipeline_occupancy: Mutex<Vec<u64>>,
    /// Time the observer's next block sat admitted-but-unstarted because
    /// the execution pipeline was full (µs), and how often that happened.
    boundary_stall_us: AtomicU64,
    boundary_stalls: AtomicU64,
    /// Optimistic-engine (Block-STM) counters on the observer: read-set
    /// validation checks, incarnations aborted by a failed check, and
    /// re-dispatched incarnations. All zero under the pessimistic engine.
    validation_passes: AtomicU64,
    spec_aborts: AtomicU64,
    re_executions: AtomicU64,
    /// Durability counters of the observer's executor (zeroes when
    /// running in-memory), set once when the executor shuts down.
    durability: Mutex<DurabilityStats>,
}

impl Metrics {
    /// Creates an empty sink stamping against the wall clock.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink stamping against `clock`. Under a simulated
    /// clock every duration in the resulting [`RunReport`] — latency
    /// samples, the measurement window, boundary stalls — is
    /// bit-deterministic for a given schedule.
    #[must_use]
    pub fn with_clock(clock: Clock) -> Self {
        Metrics {
            inner: Arc::new(Inner {
                clock,
                ..Inner::default()
            }),
        }
    }

    /// Records a client submission (driver side).
    pub fn record_submit(&self, tx: TxId) {
        let now = self.inner.clock.now();
        self.inner.submits.lock().insert(tx, now);
        let mut first = self.inner.first_submit.lock();
        if first.is_none() {
            *first = Some(now);
        }
    }

    /// Records a commit observed at the designated observer peer.
    ///
    /// Each transaction id is counted **once**: a re-observed commit
    /// (e.g. duplicate quorum delivery) is ignored entirely, so the
    /// committed count and the latency samples stay in step. Unknown
    /// transaction ids (e.g. warm-up traffic submitted before
    /// measurement started) are counted but contribute no latency sample.
    pub fn record_commit(&self, tx: TxId) {
        if !self.inner.resolved_ids.lock().insert(tx) {
            return;
        }
        let now = self.inner.clock.now();
        self.inner.committed.fetch_add(1, Ordering::Relaxed);
        if let Some(submitted) = self.inner.submits.lock().remove(&tx) {
            let micros = now.duration_since(submitted).as_micros() as u64;
            self.inner.latencies.lock().push(micros);
        }
        *self.inner.last_commit.lock() = Some(now);
    }

    /// Records an abort observed at the observer peer (XOV validation
    /// failures, contract-level rejections). Deduplicated like
    /// [`Metrics::record_commit`]: a re-observed abort, or an abort for a
    /// transaction already counted as committed, is ignored.
    pub fn record_abort(&self, tx: TxId) {
        if !self.inner.resolved_ids.lock().insert(tx) {
            return;
        }
        self.inner.aborted.fetch_add(1, Ordering::Relaxed);
        self.inner.submits.lock().remove(&tx);
    }

    /// Records a block fully processed at the observer.
    pub fn record_block(&self) {
        self.inner.blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of committed transactions so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.inner.committed.load(Ordering::Relaxed)
    }

    /// Number of processed (committed + aborted) transactions so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.inner.committed.load(Ordering::Relaxed) + self.inner.aborted.load(Ordering::Relaxed)
    }

    /// Submitted transactions that have neither committed nor aborted —
    /// in-flight during a run; dropped (fault injection) once it ends.
    /// Without [`Metrics::report`]'s pruning these entries would
    /// accumulate in the submit map for as long as the sink lives.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.inner.submits.lock().len() as u64
    }

    /// Records the observer's state digest after a block (see
    /// `ClusterSpec::capture_state`).
    pub fn set_state_digest(&self, digest: parblock_types::Hash32) {
        *self.inner.state_digest.lock() = Some(digest);
    }

    /// Records the observer's ledger head hash after a block append. The
    /// hash chain covers block contents *and* order, so two runs with
    /// equal heads committed the same blocks in the same order.
    pub fn set_ledger_head(&self, head: parblock_types::Hash32) {
        *self.inner.ledger_head.lock() = Some(head);
    }

    /// Records how many blocks were in flight on the observer's executor
    /// when a block started (the started block included, so depth-1
    /// execution always records 1).
    pub fn record_pipeline_occupancy(&self, in_flight: usize) {
        let mut occupancy = self.inner.pipeline_occupancy.lock();
        if occupancy.len() <= in_flight {
            occupancy.resize(in_flight + 1, 0);
        }
        occupancy[in_flight] += 1;
    }

    /// Records the observer executor's durability counters (WAL bytes,
    /// fsyncs, checkpoints, recovery replay length). Called once at
    /// executor shutdown; all zeroes under in-memory durability.
    pub fn set_durability_stats(&self, stats: DurabilityStats) {
        *self.inner.durability.lock() = stats;
    }

    /// Records one read-set validation check by the optimistic engine
    /// (at the validation cursor — the check that decides finality).
    pub fn record_validation_pass(&self) {
        self.inner.validation_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one speculative incarnation aborted because a recorded
    /// read no longer resolved identically.
    pub fn record_spec_abort(&self) {
        self.inner.spec_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one re-dispatched incarnation (incarnation > 0) of an
    /// aborted speculative execution.
    pub fn record_re_execution(&self) {
        self.inner.re_executions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one boundary stall: the observer's next block was admitted
    /// and ready, but the execution pipeline was at capacity for `stall`.
    pub fn record_boundary_stall(&self, stall: Duration) {
        self.inner
            .boundary_stall_us
            .fetch_add(stall.as_micros() as u64, Ordering::Relaxed);
        self.inner.boundary_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the sink into a report.
    ///
    /// Pruning: submissions still unmatched at report time (dropped by
    /// the network under fault injection, or in flight when the run
    /// ended) are counted into [`RunReport::outstanding`] and **removed**
    /// from the submit map, and the commit/abort dedup set is released,
    /// so a long-lived sink does not keep per-transaction state past the
    /// end of a run. (The aggregate counters stay monotonic; per-run
    /// measurements should use a fresh sink, as the runner does.)
    #[must_use]
    pub fn report(&self) -> RunReport {
        let outstanding = {
            let mut submits = self.inner.submits.lock();
            let n = submits.len() as u64;
            submits.clear();
            submits.shrink_to_fit();
            n
        };
        {
            let mut resolved = self.inner.resolved_ids.lock();
            resolved.clear();
            resolved.shrink_to_fit();
        }
        let mut latencies = self.inner.latencies.lock().clone();
        latencies.sort_unstable();
        let window = match (
            *self.inner.first_submit.lock(),
            *self.inner.last_commit.lock(),
        ) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => Duration::ZERO,
        };
        let durability = *self.inner.durability.lock();
        RunReport {
            committed: self.inner.committed.load(Ordering::Relaxed),
            aborted: self.inner.aborted.load(Ordering::Relaxed),
            outstanding,
            blocks: self.inner.blocks.load(Ordering::Relaxed),
            window,
            latencies_us: latencies,
            state_digest: *self.inner.state_digest.lock(),
            ledger_head: *self.inner.ledger_head.lock(),
            pipeline_occupancy: self.inner.pipeline_occupancy.lock().clone(),
            boundary_stall: Duration::from_micros(
                self.inner.boundary_stall_us.load(Ordering::Relaxed),
            ),
            boundary_stalls: self.inner.boundary_stalls.load(Ordering::Relaxed),
            wal_bytes_written: durability.wal_bytes_written,
            fsync_count: durability.fsync_count,
            checkpoint_count: durability.checkpoint_count,
            recovery_replay_len: durability.recovery_replay_len,
            messages: 0,
            validation_passes: self.inner.validation_passes.load(Ordering::Relaxed),
            aborts: self.inner.spec_aborts.load(Ordering::Relaxed),
            re_executions: self.inner.re_executions.load(Ordering::Relaxed),
        }
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Transactions committed at the observer.
    pub committed: u64,
    /// Transactions aborted at the observer.
    pub aborted: u64,
    /// Submitted transactions that never reached a commit or abort by the
    /// end of the run (lost to fault injection, or still in flight).
    pub outstanding: u64,
    /// Blocks processed at the observer.
    pub blocks: u64,
    /// First submission → last commit.
    pub window: Duration,
    /// Sorted commit latencies in microseconds.
    pub latencies_us: Vec<u64>,
    /// Observer's final state digest (when capture was enabled).
    pub state_digest: Option<parblock_types::Hash32>,
    /// Observer's final ledger head hash — equal heads mean the same
    /// blocks were committed in the same order.
    pub ledger_head: Option<parblock_types::Hash32>,
    /// `pipeline_occupancy[d]` = block starts at the observer with `d`
    /// blocks in flight (index 0 unused); `[0, n, 0, …]` means strictly
    /// block-at-a-time execution.
    pub pipeline_occupancy: Vec<u64>,
    /// Total time the observer's next block sat ready but unstarted
    /// because the execution pipeline was full.
    pub boundary_stall: Duration,
    /// Number of boundary stalls behind [`RunReport::boundary_stall`].
    pub boundary_stalls: u64,
    /// Bytes the observer's executor appended to its write-ahead log
    /// (zero under in-memory durability).
    pub wal_bytes_written: u64,
    /// Fsync barriers the observer's executor issued (WAL group
    /// commits, block seals, checkpoint publishes).
    pub fsync_count: u64,
    /// State checkpoints the observer's executor wrote.
    pub checkpoint_count: u64,
    /// WAL records the observer's executor replayed above its checkpoint
    /// when it recovered at startup (zero for a fresh store).
    pub recovery_replay_len: u64,
    /// Total network messages sent during the run (filled by the runner;
    /// the commit-batching ablation compares this across strategies).
    pub messages: u64,
    /// Read-set validation checks performed by the optimistic engine at
    /// the observer (zero under the pessimistic scheduler).
    pub validation_passes: u64,
    /// Speculative incarnations aborted by a failed validation check.
    /// Distinct from [`RunReport::aborted`]: these transactions re-execute
    /// and (normally) still commit.
    pub aborts: u64,
    /// Re-dispatched incarnations (every abort that was retried).
    pub re_executions: u64,
}

impl RunReport {
    /// A digest over every field of the report, for bit-reproducibility
    /// checks: two deterministic-simulation runs of the same seed must
    /// produce byte-identical reports, and comparing 32 bytes is how the
    /// explorer (and CI) asserts that without diffing structures.
    #[must_use]
    pub fn digest(&self) -> parblock_types::Hash32 {
        use parblock_types::wire::Wire;
        let mut bytes = Vec::new();
        self.committed.encode(&mut bytes);
        self.aborted.encode(&mut bytes);
        self.outstanding.encode(&mut bytes);
        self.blocks.encode(&mut bytes);
        (self.window.as_nanos() as u64).encode(&mut bytes);
        (self.latencies_us.len() as u64).encode(&mut bytes);
        for &l in &self.latencies_us {
            l.encode(&mut bytes);
        }
        for digest in [self.state_digest, self.ledger_head] {
            match digest {
                Some(h) => bytes.extend_from_slice(&h.0),
                None => bytes.push(0),
            }
        }
        (self.pipeline_occupancy.len() as u64).encode(&mut bytes);
        for &o in &self.pipeline_occupancy {
            o.encode(&mut bytes);
        }
        (self.boundary_stall.as_nanos() as u64).encode(&mut bytes);
        self.boundary_stalls.encode(&mut bytes);
        self.wal_bytes_written.encode(&mut bytes);
        self.fsync_count.encode(&mut bytes);
        self.checkpoint_count.encode(&mut bytes);
        self.recovery_replay_len.encode(&mut bytes);
        self.messages.encode(&mut bytes);
        // Speculation counters entered the report after seeds were pinned
        // on the old encoding: encode them only when set, so pessimistic
        // (and historical) reports keep byte-identical digests.
        if self.validation_passes != 0 || self.aborts != 0 || self.re_executions != 0 {
            self.validation_passes.encode(&mut bytes);
            self.aborts.encode(&mut bytes);
            self.re_executions.encode(&mut bytes);
        }
        parblock_crypto::sha256(&bytes)
    }

    /// Committed transactions per second over the measurement window.
    #[must_use]
    pub fn throughput_tps(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.window.as_secs_f64()
    }

    /// Mean end-to-end latency.
    #[must_use]
    pub fn avg_latency(&self) -> Duration {
        if self.latencies_us.is_empty() {
            return Duration::ZERO;
        }
        let sum: u64 = self.latencies_us.iter().sum();
        Duration::from_micros(sum / self.latencies_us.len() as u64)
    }

    /// Latency percentile (`p` in `0.0..=1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Duration {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.latencies_us.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
        Duration::from_micros(self.latencies_us[idx])
    }

    /// The deepest pipeline overlap the observer recorded: the largest
    /// number of simultaneously in-flight blocks at any block start
    /// (0 when no block started). Strictly block-at-a-time execution
    /// yields 1.
    #[must_use]
    pub fn max_occupancy(&self) -> usize {
        self.pipeline_occupancy
            .iter()
            .rposition(|&count| count > 0)
            .unwrap_or(0)
    }

    /// Abort rate among processed transactions.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            return 0.0;
        }
        self.aborted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::ClientId;

    use super::*;

    fn tx(n: u64) -> TxId {
        TxId::new(ClientId(0), n)
    }

    #[test]
    fn submit_commit_produces_latency_sample() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        std::thread::sleep(Duration::from_millis(2));
        m.record_commit(tx(1));
        let r = m.report();
        assert_eq!(r.committed, 1);
        assert_eq!(r.latencies_us.len(), 1);
        assert!(r.avg_latency() >= Duration::from_millis(2));
        assert!(r.throughput_tps() > 0.0);
    }

    #[test]
    fn unknown_commit_counts_without_latency() {
        let m = Metrics::new();
        m.record_commit(tx(9));
        let r = m.report();
        assert_eq!(r.committed, 1);
        assert!(r.latencies_us.is_empty());
        assert_eq!(r.avg_latency(), Duration::ZERO);
    }

    #[test]
    fn aborts_tracked_separately() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        m.record_abort(tx(1));
        m.record_submit(tx(2));
        m.record_commit(tx(2));
        let r = m.report();
        assert_eq!(r.aborted, 1);
        assert_eq!(r.committed, 1);
        assert!((r.abort_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn duplicate_commit_counts_once() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        m.record_commit(tx(1));
        m.record_commit(tx(1));
        assert_eq!(m.committed(), 1, "re-observed commit double-counted");
        let r = m.report();
        assert_eq!(r.committed, 1);
        assert_eq!(r.latencies_us.len(), 1);
    }

    #[test]
    fn duplicate_abort_counts_once_and_commit_wins_over_late_abort() {
        let m = Metrics::new();
        m.record_abort(tx(1));
        m.record_abort(tx(1));
        let r = m.report();
        assert_eq!(r.aborted, 1, "re-observed abort double-counted");

        let m = Metrics::new();
        m.record_commit(tx(2));
        m.record_abort(tx(2));
        assert_eq!(m.committed(), 1);
        assert_eq!(m.report().aborted, 0, "a resolved tx must not re-resolve");
    }

    #[test]
    fn outstanding_submits_are_pruned_at_report_time() {
        let m = Metrics::new();
        m.record_submit(tx(1));
        m.record_submit(tx(2));
        m.record_submit(tx(3));
        m.record_commit(tx(1));
        assert_eq!(m.outstanding(), 2, "two submits never resolved");
        let r = m.report();
        assert_eq!(r.outstanding, 2);
        assert_eq!(
            m.outstanding(),
            0,
            "report must prune dropped submissions from the map"
        );
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let r = RunReport {
            committed: 100,
            aborted: 0,
            outstanding: 0,
            blocks: 1,
            window: Duration::from_secs(1),
            latencies_us: (1..=100).collect(),
            state_digest: None,
            ledger_head: None,
            pipeline_occupancy: Vec::new(),
            boundary_stall: Duration::ZERO,
            boundary_stalls: 0,
            wal_bytes_written: 0,
            fsync_count: 0,
            checkpoint_count: 0,
            recovery_replay_len: 0,
            messages: 0,
            validation_passes: 0,
            aborts: 0,
            re_executions: 0,
        };
        assert_eq!(r.latency_percentile(0.0), Duration::from_micros(1));
        assert_eq!(r.latency_percentile(1.0), Duration::from_micros(100));
        assert_eq!(r.latency_percentile(0.5), Duration::from_micros(51));
        assert_eq!(r.avg_latency(), Duration::from_micros(50));
    }

    #[test]
    fn empty_report_is_zeroes() {
        let r = Metrics::new().report();
        assert_eq!(r.throughput_tps(), 0.0);
        assert_eq!(r.latency_percentile(0.9), Duration::ZERO);
        assert_eq!(r.abort_rate(), 0.0);
        assert!(r.pipeline_occupancy.is_empty());
        assert_eq!(r.boundary_stall, Duration::ZERO);
        assert_eq!(r.ledger_head, None);
    }

    #[test]
    fn pipeline_occupancy_and_stalls_accumulate() {
        let m = Metrics::new();
        m.record_pipeline_occupancy(1);
        m.record_pipeline_occupancy(2);
        m.record_pipeline_occupancy(2);
        m.record_boundary_stall(Duration::from_micros(300));
        m.record_boundary_stall(Duration::from_micros(200));
        let r = m.report();
        assert_eq!(r.pipeline_occupancy, vec![0, 1, 2]);
        assert_eq!(r.max_occupancy(), 2);
        assert_eq!(r.boundary_stall, Duration::from_micros(500));
        assert_eq!(r.boundary_stalls, 2);
        assert_eq!(Metrics::new().report().max_occupancy(), 0);
    }

    #[test]
    fn durability_stats_flow_into_report() {
        let m = Metrics::new();
        assert_eq!(m.report().fsync_count, 0);
        m.set_durability_stats(DurabilityStats {
            wal_bytes_written: 100,
            fsync_count: 7,
            checkpoint_count: 2,
            recovery_replay_len: 42,
        });
        let r = m.report();
        assert_eq!(r.wal_bytes_written, 100);
        assert_eq!(r.fsync_count, 7);
        assert_eq!(r.checkpoint_count, 2);
        assert_eq!(r.recovery_replay_len, 42);
    }

    #[test]
    fn ledger_head_records_latest() {
        let m = Metrics::new();
        m.set_ledger_head(parblock_types::Hash32([1; 32]));
        m.set_ledger_head(parblock_types::Hash32([2; 32]));
        assert_eq!(m.report().ledger_head, Some(parblock_types::Hash32([2; 32])));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 1]")]
    fn invalid_percentile_panics() {
        let _ = Metrics::new().report().latency_percentile(1.5);
    }

    #[test]
    fn speculation_counters_flow_into_report_and_digest() {
        let m = Metrics::new();
        let baseline = m.report().digest();
        m.record_validation_pass();
        m.record_validation_pass();
        m.record_spec_abort();
        m.record_re_execution();
        let r = m.report();
        assert_eq!(r.validation_passes, 2);
        assert_eq!(r.aborts, 1);
        assert_eq!(r.re_executions, 1);
        assert_ne!(r.digest(), baseline, "speculation work must be visible");
    }

    #[test]
    fn zero_speculation_counters_keep_the_historical_digest() {
        // The digest encoding predates the speculation counters; a report
        // with all three at zero must hash exactly as it did before they
        // existed (pinned regression seeds depend on it).
        let mut r = Metrics::new().report();
        let legacy = r.digest();
        r.validation_passes = 1;
        assert_ne!(r.digest(), legacy);
        r.validation_passes = 0;
        assert_eq!(r.digest(), legacy);
    }

    #[test]
    fn simulated_clock_makes_latencies_exact() {
        let clock = Clock::simulated();
        let m = Metrics::with_clock(clock.clone());
        m.record_submit(tx(1));
        clock.advance(Duration::from_micros(1234));
        m.record_commit(tx(1));
        let r = m.report();
        assert_eq!(r.latencies_us, vec![1234], "no wall-clock drift");
        assert_eq!(r.window, Duration::from_micros(1234));
    }

    #[test]
    fn report_digest_reflects_content() {
        let clock = Clock::simulated();
        let run = || {
            let m = Metrics::with_clock(clock.clone());
            m.record_submit(tx(1));
            m.record_commit(tx(1));
            m.record_block();
            m.report()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.digest(), b.digest(), "identical runs share a digest");
        let m = Metrics::with_clock(clock.clone());
        m.record_submit(tx(1));
        m.record_abort(tx(1));
        assert_ne!(a.digest(), m.report().digest());
    }
}
