//! Per-node durability construction (DESIGN.md §9).
//!
//! Resolves `ClusterSpec::durability` into the [`Durability`] handle a
//! node writes through, recovering any existing on-disk store in the
//! process. Orderers, which persist only the chain, open the
//! [`parblock_store::Store`] directly via [`open_orderer_store`].

use parblock_ledger::{Durability, InMemory};
use parblock_store::{OnDisk, Recovered, Store};
use parblock_types::NodeId;

use crate::cluster::{ClusterSpec, DurabilityMode};

/// A node's durability handle plus whatever its store recovered.
pub(crate) struct NodeDurability {
    pub durability: Box<dyn Durability>,
    /// `Some` when an on-disk store held a sealed chain to resume from.
    pub recovered: Option<Recovered>,
}

/// Builds the durability handle for an executor peer. `trace` (a
/// disabled recorder for every node but the observer) times block seals
/// into the lifecycle trace's seal histogram (DESIGN.md §14).
///
/// # Panics
///
/// Panics if the on-disk store cannot be opened or is internally
/// inconsistent — a node that cannot guarantee durability must not
/// serve (DESIGN.md §9).
pub(crate) fn for_peer(
    spec: &ClusterSpec,
    node: NodeId,
    trace: parblock_trace::TraceRecorder,
) -> NodeDurability {
    match &spec.durability {
        DurabilityMode::InMemory => NodeDurability {
            durability: Box::new(InMemory),
            recovered: None,
        },
        DurabilityMode::OnDisk { data_dir, .. } => {
            let dir = Store::node_dir(data_dir, node.0);
            let (mut on_disk, recovered) = OnDisk::open(&dir, spec.durability_config)
                .unwrap_or_else(|e| panic!("open durable store {}: {e}", dir.display()));
            on_disk.set_trace(trace);
            NodeDurability {
                durability: Box::new(on_disk),
                recovered: (!recovered.is_empty()).then_some(recovered),
            }
        }
    }
}

/// Opens the chain store for an orderer (`None` when in-memory). The
/// orderer seals emitted blocks before announcing them and recovers its
/// chain position (and exactly-once dedup set) from the store.
///
/// # Panics
///
/// Panics if the store cannot be opened, like [`for_peer`].
pub(crate) fn open_orderer_store(
    spec: &ClusterSpec,
    node: NodeId,
) -> Option<(Store, Recovered)> {
    match &spec.durability {
        DurabilityMode::InMemory => None,
        DurabilityMode::OnDisk { data_dir, .. } => {
            let dir = Store::node_dir(data_dir, node.0);
            let opened = Store::open(&dir, spec.durability_config)
                .unwrap_or_else(|e| panic!("open orderer store {}: {e}", dir.display()));
            Some(opened)
        }
    }
}
