//! The cluster-wide message type.
//!
//! All three systems share one message enum so they can share the network
//! substrate and node runtime; each system simply never sends the other's
//! variants.

use std::sync::Arc;

use parblock_consensus::{PbftMsg, SeqMsg};
use parblock_crypto::Signature;
use parblock_depgraph::DependencyGraph;
use parblock_types::{BlockNumber, Hash32, Key, NodeId, SeqNo, Transaction, Value};

/// Consensus-internal messages (orderer ↔ orderer).
#[derive(Debug, Clone)]
pub enum ConsMsg {
    /// PBFT traffic.
    Pbft(PbftMsg),
    /// Quorum-sequencer traffic.
    Seq(SeqMsg),
}

/// The immutable content of a NEWBLOCK announcement, shared by reference
/// between orderer copies (§IV-B: ⟨NEWBLOCK, n, B, G(B), A, o, h⟩).
#[derive(Debug)]
pub struct BlockBundle {
    /// The block `B` with sequence number `n` and hash link `h` inside
    /// its header.
    pub block: parblock_types::Block,
    /// `G(B)` — present in OXII; `None` in OX and XOV.
    pub graph: Option<DependencyGraph>,
    /// `H(B)`, the hash executors quorum-match on.
    pub hash: Hash32,
}

/// The result of executing one transaction on an agent.
///
/// Matching results are counted against τ(A) (Algorithm 3); an abort is
/// the paper's `(x, "abort")` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecResult {
    /// Valid execution with the resulting record updates.
    Committed(Vec<(Key, Value)>),
    /// Invalid at the application level (reason kept for diagnostics; two
    /// aborts match regardless of reason, as honest agents agree anyway).
    Aborted(String),
}

impl ExecResult {
    /// Whether two results "match" for quorum purposes.
    #[must_use]
    pub fn matches(&self, other: &ExecResult) -> bool {
        match (self, other) {
            (ExecResult::Committed(a), ExecResult::Committed(b)) => a == b,
            (ExecResult::Aborted(_), ExecResult::Aborted(_)) => true,
            _ => false,
        }
    }
}

/// An executor's COMMIT message (§IV-C, Algorithm 2): the accumulated
/// execution results `S = {(x, r)}` since its last cut.
#[derive(Debug)]
pub struct CommitMsg {
    /// The block the results belong to.
    pub block: BlockNumber,
    /// Results per in-block position.
    pub results: Vec<(SeqNo, ExecResult)>,
    /// The executing agent.
    pub executor: NodeId,
    /// Signature over the results digest.
    pub sig: Signature,
}

/// An XOV endorsement envelope: the endorser's simulated execution
/// results, carried inside the ordered transaction's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Read set with the versions observed at endorsement time (`None`
    /// for keys absent from the endorser's state).
    pub read_versions: Vec<(Key, Option<parblock_ledger::Version>)>,
    /// The proposed writes.
    pub writes: Vec<(Key, Value)>,
}

/// Every message exchanged in a simulated cluster.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client REQUEST: ⟨REQUEST, op, A, ts_c, c⟩ signed by the client.
    Request {
        /// The transaction (operation, app, client timestamp).
        tx: Transaction,
        /// Client signature over the transaction bytes.
        sig: Signature,
    },
    /// Orderer ↔ orderer consensus traffic.
    Cons(ConsMsg),
    /// NEWBLOCK from one orderer (bundle shared across orderer copies).
    NewBlock {
        /// The announced block (+ graph in OXII).
        bundle: Arc<BlockBundle>,
        /// The announcing orderer.
        orderer: NodeId,
        /// Orderer signature over the block hash.
        sig: Signature,
    },
    /// OXII executor COMMIT message.
    Commit(Arc<CommitMsg>),
    /// XOV: client asks an endorser to simulate a transaction.
    EndorseReq {
        /// The original transaction.
        tx: Transaction,
    },
    /// XOV: an endorser's reply.
    Endorsement {
        /// The endorsed transaction's id.
        tx: parblock_types::TxId,
        /// The simulated results.
        envelope: Envelope,
        /// The endorsing peer.
        endorser: NodeId,
        /// Endorser signature over the envelope digest.
        sig: Signature,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_results_match_by_content() {
        let a = ExecResult::Committed(vec![(Key(1), Value::Int(1))]);
        let b = ExecResult::Committed(vec![(Key(1), Value::Int(1))]);
        let c = ExecResult::Committed(vec![(Key(1), Value::Int(2))]);
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
        let x = ExecResult::Aborted("one reason".into());
        let y = ExecResult::Aborted("another".into());
        assert!(x.matches(&y));
        assert!(!a.matches(&x));
    }
}
