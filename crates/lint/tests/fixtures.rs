//! Fixture-driven tests in the style of rustc's ui suite: each file
//! under `tests/fixtures/` declares the workspace path it pretends to
//! live at (`//@ path: …`) and annotates every expected violation with
//! `//~ <rule-id>` on the violating line (`//~^` points one line up,
//! one extra line per extra `^`). The harness asserts the *exact*
//! `(line, rule)` multiset, so a fixture that starts over- or
//! under-reporting fails loudly.

use std::fs;
use std::path::Path;

use parblock_lint::{lint_source, Rule};

fn run_fixture(name: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = fs::read_to_string(dir.join(name)).expect("read fixture");

    let mut declared_path = None;
    let mut expected_suppressions = None;
    let mut expected: Vec<(u32, String)> = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        if let Some(rest) = line.trim().strip_prefix("//@ path:") {
            declared_path = Some(rest.trim().to_string());
            continue;
        }
        if let Some(rest) = line.trim().strip_prefix("//@ suppressions:") {
            expected_suppressions = Some(rest.trim().parse::<usize>().expect("count"));
            continue;
        }
        if let Some(at) = line.find("//~") {
            let rest = &line[at + 3..];
            let carets = rest.chars().take_while(|c| *c == '^').count();
            let rule_id = rest[carets..]
                .split_whitespace()
                .next()
                .unwrap_or_else(|| panic!("{name}:{line_no}: annotation names no rule"));
            assert!(
                Rule::from_id(rule_id).is_some(),
                "{name}:{line_no}: unknown rule `{rule_id}` in annotation"
            );
            expected.push((line_no - carets as u32, rule_id.to_string()));
        }
    }
    let declared_path = declared_path.expect("fixture needs a `//@ path:` directive");

    let (findings, suppressions) = lint_source(&declared_path, &src);
    let mut actual: Vec<(u32, String)> = findings
        .iter()
        .map(|f| (f.line, f.rule.id().to_string()))
        .collect();
    actual.sort();
    expected.sort();
    assert_eq!(actual, expected, "findings mismatch in {name}:\n{findings:#?}");
    if let Some(n) = expected_suppressions {
        assert_eq!(suppressions, n, "suppression count mismatch in {name}");
    }
}

#[test]
fn bad_wall_clock() {
    run_fixture("bad_wall_clock.rs");
}

#[test]
fn good_wall_clock() {
    run_fixture("good_wall_clock.rs");
}

#[test]
fn bad_thread_spawn() {
    run_fixture("bad_thread_spawn.rs");
}

#[test]
fn good_thread_spawn() {
    run_fixture("good_thread_spawn.rs");
}

#[test]
fn bad_file_io() {
    run_fixture("bad_file_io.rs");
}

#[test]
fn good_file_io() {
    run_fixture("good_file_io.rs");
}

#[test]
fn bad_unordered_iter() {
    run_fixture("bad_unordered_iter.rs");
}

#[test]
fn good_unordered_iter() {
    run_fixture("good_unordered_iter.rs");
}

#[test]
fn bad_rwset() {
    run_fixture("bad_rwset.rs");
}

#[test]
fn good_rwset() {
    run_fixture("good_rwset.rs");
}

#[test]
fn bad_hot_path_alloc() {
    run_fixture("bad_hot_path_alloc.rs");
}

#[test]
fn good_hot_path_alloc() {
    run_fixture("good_hot_path_alloc.rs");
}

#[test]
fn allow_ok() {
    run_fixture("allow_ok.rs");
}

#[test]
fn allow_stale() {
    run_fixture("allow_stale.rs");
}
