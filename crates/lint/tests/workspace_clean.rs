//! The workspace itself must stay lint-clean: this is the same gate
//! `repro lint` (and CI) runs, wired into plain `cargo test` so a
//! violation fails the suite even when nobody runs the binary.

use std::path::Path;

#[test]
fn workspace_has_no_lint_violations() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = parblock_lint::find_workspace_root(here).expect("workspace root");
    let report = parblock_lint::run_workspace(&root).expect("lint run");
    assert!(
        report.is_clean(),
        "workspace lint violations:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
