//@ path: crates/types/src/fixture_wire.rs
// Known-bad: HashMap iteration order leaks into wire bytes / digests.
use std::collections::HashMap;

pub fn encode_state(entries: &HashMap<u64, u64>) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in entries { //~ unordered-iter
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

pub fn digest_values(map: &HashMap<u64, u64>) -> u64 {
    map.values().fold(0, |acc, v| acc ^ v) //~ unordered-iter
}

pub fn lookup(map: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    map.get(&key).copied()
}
