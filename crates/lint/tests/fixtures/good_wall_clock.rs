//@ path: crates/types/src/clock.rs
// Known-good: the Clock implementation is the sanctioned home of
// wall-clock reads, so the rule does not fire here.
use std::time::Instant;

pub fn now() -> Instant {
    Instant::now()
}
