//@ path: crates/store/src/fixture_wal.rs
// Known-good: the storage crate owns durability, so file I/O and
// fsync are expected here.
pub fn append(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}
