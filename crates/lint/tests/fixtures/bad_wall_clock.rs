//@ path: crates/core/src/fixture_wall.rs
// Known-bad: wall-clock reads outside the Clock abstraction.
use std::time::{Duration, Instant, SystemTime};

pub fn elapsed_since_start() -> Duration {
    let start = Instant::now(); //~ wall-clock
    start.elapsed()
}

pub fn timestamp() -> SystemTime {
    SystemTime::now() //~ wall-clock
}
