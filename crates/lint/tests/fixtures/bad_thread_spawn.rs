//@ path: crates/core/src/fixture_spawn.rs
// Known-bad: threads spawned outside the executor pool / network
// engine escape the deterministic simulation harness.
fn work() {}

pub fn run_detached() {
    std::thread::spawn(work); //~ thread-spawn
}

pub fn run_named() -> std::io::Result<()> {
    let handle = std::thread::Builder::new() //~ thread-spawn
        .name("worker".into())
        .spawn(work)?;
    drop(handle);
    Ok(())
}
