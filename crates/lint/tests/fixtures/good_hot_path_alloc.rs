//@ path: crates/core/src/fixture_hot_path_ok.rs
//@ suppressions: 1
// Known-good: hot-path functions that serialize canonically and fan
// out by sharing. `Arc::clone` is a refcount bump spelled as a path
// call, so it never trips the rule; the single wrap-once `.clone()` a
// multicast legitimately needs carries an allow marker.

pub fn commit_digest(writes: &[(u64, Value)], bytes: &mut Vec<u8>) {
    for (key, value) in writes {
        bytes.extend_from_slice(&key.to_le_bytes());
        value.encode(bytes);
    }
}

pub fn multicast_block(dests: &[u64], msg: &Block) {
    // lint:allow(hot-path-alloc) — one clone total, shared by every recipient
    let payload = Arc::new(msg.clone());
    for dest in dests {
        route(*dest, Arc::clone(&payload));
    }
}
