//@ path: crates/types/src/fixture_wire_ok.rs
// Known-good: ordered collections in canonical functions, and
// unordered iteration only in order-insensitive helpers.
use std::collections::{BTreeMap, HashMap};

pub fn encode_state(entries: &BTreeMap<u64, u64>) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in entries {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

pub fn sum_all(map: &HashMap<u64, u64>) -> u64 {
    map.values().sum()
}
