//@ path: crates/core/src/fixture_hot_path.rs
// Known-bad: per-item heap allocation inside hot-path encode / digest /
// multicast functions. The first case reproduces the `commit_digest`
// bug this rule was written for: a `Debug` rendering used as a digest
// preimage — unstable across compiler releases AND a String allocation
// per write on the commit hot path.

pub fn commit_digest(writes: &[(u64, Value)], bytes: &mut Vec<u8>) {
    for (key, value) in writes {
        bytes.extend_from_slice(&key.to_le_bytes());
        let rendered = format!("{value:?}"); //~ hot-path-alloc
        bytes.extend_from_slice(rendered.as_bytes());
    }
}

pub fn encode_header(seq: u64, out: &mut String) {
    out.push_str(&seq.to_string()); //~ hot-path-alloc
}

pub fn multicast_block(dests: &[u64], msg: &Block) {
    for dest in dests {
        route(*dest, msg.clone()); //~ hot-path-alloc
    }
}

// Same tokens outside a hot-path function are not this rule's business.
pub fn render_status(value: &Value) -> String {
    format!("{value:?}")
}
