//@ path: crates/consensus/src/fixture_io.rs
// Known-bad: durability syscalls outside the storage crate.
pub trait Syncable {
    fn sync_all(&self) -> std::io::Result<()>;
}

pub fn persist(path: &str, bytes: &[u8]) -> std::io::Result<String> {
    std::fs::write(path, bytes)?; //~ file-io
    std::fs::read_to_string(path) //~ file-io
}

pub fn flush(file: &impl Syncable) -> std::io::Result<()> {
    file.sync_all() //~ file-io
}
