//@ path: crates/core/src/fixture_allow.rs
//@ suppressions: 2
// Known-good: justified markers suppress, in both placements (line
// above and same line).
use std::time::Instant;

pub fn startup_probe() -> Instant {
    // lint:allow(wall-clock) — fixture: measuring real startup latency
    Instant::now()
}

pub fn tick() -> Instant {
    Instant::now() // lint:allow(wall-clock) — fixture: same-line marker form
}
