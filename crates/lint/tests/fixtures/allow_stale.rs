//@ path: crates/core/src/fixture_stale.rs
// Known-bad: markers that suppress nothing, carry no justification,
// or name unknown rules are themselves `stale-allow` violations.
pub fn quiet() -> u32 {
    // lint:allow(wall-clock) — nothing here actually reads the clock
    //~^ stale-allow
    41 + 1
}

pub fn unjustified() -> std::time::SystemTime {
    // lint:allow(wall-clock)
    //~^ stale-allow
    std::time::SystemTime::now() //~ wall-clock
}

pub fn unknown_rule() -> u32 {
    // lint:allow(no-such-rule) — typo'd rule id
    //~^ stale-allow
    7
}
