//@ path: crates/contracts/src/fixture_ok.rs
// Known-good: every key `execute` can touch appears in the declared
// read/write set, including vector fan-out and helper-mediated reads.
impl Op {
    pub fn rw_set(&self) -> RwSet {
        match self {
            Op::Move { from, to } => RwSet::new([*from, *to], [*from, *to]),
            Op::Fan { sources, to } => {
                let keys: Vec<Key> = sources.iter().map(|(k, _)| *k).chain([*to]).collect();
                RwSet::new(keys.clone(), keys)
            }
            Op::Look { key } => RwSet::read_only([*key]),
        }
    }
}
fn helper(state: &dyn StateReader, key: Key) -> Option<i64> {
    state.try_read(key).and_then(|v| v.as_int())
}
impl Contract for C {
    fn execute(&self, tx: &Transaction, state: &dyn StateReader) -> ExecOutcome {
        let Some(op) = Op::decode(tx.payload()) else { return ExecOutcome::Abort("bad".into()); };
        match op {
            Op::Move { from, to } => {
                let a = helper(state, from).unwrap_or(0);
                let b = state.read(to).as_int().unwrap_or(0);
                ExecOutcome::Commit(vec![(from, Value::Int(a)), (to, Value::Int(b))])
            }
            Op::Fan { sources, to } => {
                let mut writes = Vec::with_capacity(sources.len() + 1);
                for (key, share) in &sources {
                    let bal = helper(state, *key).unwrap_or(0);
                    writes.push((*key, Value::Int(bal - share)));
                }
                let dst = state.read(to).as_int().unwrap_or(0);
                writes.push((to, Value::Int(dst)));
                ExecOutcome::Commit(writes)
            }
            Op::Look { key } => {
                let _ = state.read(key);
                ExecOutcome::Commit(Vec::new())
            }
        }
    }
}
