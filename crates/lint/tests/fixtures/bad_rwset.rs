//@ path: crates/contracts/src/fixture_app.rs
// Known-bad: the declared read set misses keys `execute` reads —
// exactly the under-declaration that breaks OXII's dependency graphs.
impl Op {
    pub fn rw_set(&self) -> RwSet {
        match self {
            Op::Move { from, to } => RwSet::new([*from], [*from, *to]),
            Op::Look { key } => RwSet::read_only([]),
        }
    }
}
impl Contract for C {
    fn execute(&self, tx: &Transaction, state: &dyn StateReader) -> ExecOutcome {
        let Some(op) = Op::decode(tx.payload()) else { return ExecOutcome::Abort("bad".into()); };
        match op {
            Op::Move { from, to } => {
                let a = state.read(from).as_int().unwrap_or(0);
                let b = state.read(to).as_int().unwrap_or(0); //~ rwset-coverage
                ExecOutcome::Commit(vec![(from, Value::Int(a)), (to, Value::Int(b))])
            }
            Op::Look { key } => {
                let _ = state.read(key); //~ rwset-coverage
                ExecOutcome::Commit(Vec::new())
            }
        }
    }
}
