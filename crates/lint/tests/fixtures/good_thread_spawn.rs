//@ path: crates/core/src/pool.rs
// Known-good: the executor pool is one of the two sanctioned homes of
// thread spawns (the other is the network engine).
fn work() {}

pub fn spawn_worker() {
    std::thread::spawn(work);
}
