//! The determinism lint family (DESIGN.md §12): wall-clock reads,
//! stray thread spawns, file I/O outside the storage crate,
//! unordered-map iteration inside order-sensitive functions, and heap
//! allocation inside hot-path encode/digest/multicast functions.
//!
//! All rules match *token sequences* from the comment/string-aware
//! lexer, so `Instant::now` in a doc comment, a string literal, or
//! `#[cfg(test)]` code can never trip them.

use crate::lexer::{matching, Tok, TokKind};
use crate::report::{Finding, Rule};

/// Function-name substrings that mark a function as order-sensitive:
/// its output feeds digests, the wire format, or dependency-graph
/// emission, so iteration order inside it must be deterministic.
const CANONICAL_FN_MARKERS: [&str; 6] = ["digest", "encode", "decode", "emit", "wire", "hash"];

/// Function-name substrings that mark a function as hot-path
/// serialization or fan-out code. Per-item heap allocation there is a
/// throughput bug; `format!` is additionally a correctness bug when the
/// rendering feeds a digest or the wire (Rust's `Debug` output is not a
/// stable format — the `commit_digest` incident, DESIGN.md §15).
const HOT_PATH_FN_MARKERS: [&str; 3] = ["encode", "digest", "multicast"];

/// Methods that observe a collection in iteration order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_keys",
    "into_values",
];

/// Runs every determinism rule over one file's (cfg-test-stripped)
/// token stream. `path` is workspace-relative with `/` separators and
/// drives the per-rule exemptions:
///
/// - `wall-clock` exempts `crates/types/src/clock.rs` (the one place
///   allowed to read the machine clock);
/// - `file-io` exempts `crates/store/` (`parblock_store` owns
///   durability);
/// - `thread-spawn` exempts the executor pool and the network engine.
#[must_use]
pub fn check_file(path: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !path.ends_with("crates/types/src/clock.rs") {
        wall_clock(path, toks, &mut findings);
    }
    if !path.ends_with("crates/core/src/pool.rs") && !path.ends_with("crates/network/src/engine.rs")
    {
        thread_spawn(path, toks, &mut findings);
    }
    if !path.contains("crates/store/") {
        file_io(path, toks, &mut findings);
    }
    unordered_iter(path, toks, &mut findings);
    hot_path_alloc(path, toks, &mut findings);
    findings
}

/// `true` when `toks[i..]` starts with the path `a :: b`.
fn is_path2(toks: &[Tok], i: usize, a: &str, b: &str) -> bool {
    toks.len() > i + 3
        && toks[i].is_ident(a)
        && toks[i + 1].is_punct(':')
        && toks[i + 2].is_punct(':')
        && toks[i + 3].is_ident(b)
}

fn wall_clock(path: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        for ty in ["Instant", "SystemTime"] {
            if t.is_ident(ty) && is_path2(toks, i, ty, "now") {
                findings.push(Finding::new(
                    Rule::WallClock,
                    path,
                    t.line,
                    format!(
                        "`{ty}::now()` outside crates/types/src/clock.rs — \
                         thread the injected Clock instead"
                    ),
                ));
            }
        }
    }
}

fn thread_spawn(path: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if is_path2(toks, i, "thread", "spawn") || is_path2(toks, i, "thread", "Builder") {
            findings.push(Finding::new(
                Rule::ThreadSpawn,
                path,
                t.line,
                "`thread::spawn` outside the executor pool / network engine \
                 — threads escape the deterministic simulation harness",
            ));
        }
    }
}

fn file_io(path: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let hit = if t.is_ident("fs") && toks.len() > i + 3 && toks[i + 1].is_punct(':') {
            // Any `fs::<item>` use (std::fs or a `use std::fs;` alias).
            is_path2(toks, i, "fs", &toks[i + 3].text)
                .then(|| format!("fs::{}", toks[i + 3].text))
        } else if ["open", "create", "create_new", "options"]
            .iter()
            .any(|m| is_path2(toks, i, "File", m))
        {
            Some(format!("File::{}", toks[i + 3].text))
        } else if is_path2(toks, i, "OpenOptions", "new") {
            Some("OpenOptions::new".to_string())
        } else if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|m| m.is_ident("sync_all") || m.is_ident("sync_data"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            Some(toks[i + 1].text.clone())
        } else {
            None
        };
        if let Some(what) = hit {
            findings.push(Finding::new(
                Rule::FileIo,
                path,
                t.line,
                format!("file I/O (`{what}`) outside parblock_store — durability belongs there"),
            ));
        }
    }
}

fn is_canonical_fn(path: &str, name: &str) -> bool {
    // The whole depgraph crate emits dependency graphs, so every one of
    // its functions is order-sensitive; elsewhere the name decides.
    path.contains("crates/depgraph/") || CANONICAL_FN_MARKERS.iter().any(|m| name.contains(m))
}

fn unordered_iter(path: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    let hash_names = collect_hash_typed_names(toks);
    if hash_names.is_empty() {
        return;
    }
    let mut seen_lines = Vec::new();
    for (fn_name, body) in fn_bodies(toks) {
        if !is_canonical_fn(path, &fn_name) {
            continue;
        }
        let (b0, b1) = body;
        for i in b0..b1 {
            // `recv.iter()` / `self.recv.keys()` / … where `recv` is
            // known to be a HashMap/HashSet.
            if toks[i].is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|m| ITER_METHODS.iter().any(|x| m.is_ident(x)))
                && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
                && i > b0
                && toks[i - 1].kind == TokKind::Ident
                && hash_names.contains(&toks[i - 1].text)
                && !seen_lines.contains(&toks[i].line)
            {
                seen_lines.push(toks[i].line);
                findings.push(Finding::new(
                    Rule::UnorderedIter,
                    path,
                    toks[i].line,
                    format!(
                        "iteration over unordered `{}` inside order-sensitive fn `{}` \
                         — sort first or use a BTree collection",
                        toks[i - 1].text, fn_name
                    ),
                ));
            }
            // `for pat in <expr mentioning a hash-typed name> {`
            if toks[i].is_ident("for")
                && toks.get(i + 1).is_some_and(|t| !t.is_punct('<'))
                && (i == 0 || !toks[i - 1].is_ident("impl"))
            {
                if let Some(line) = for_loop_over_hash(toks, i, b1, &hash_names) {
                    if !seen_lines.contains(&line) {
                        seen_lines.push(line);
                        findings.push(Finding::new(
                            Rule::UnorderedIter,
                            path,
                            line,
                            format!(
                                "`for` loop over an unordered collection inside \
                                 order-sensitive fn `{fn_name}` — sort first or use a \
                                 BTree collection"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

fn hot_path_alloc(path: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    for (fn_name, (b0, b1)) in fn_bodies(toks) {
        if !HOT_PATH_FN_MARKERS.iter().any(|m| fn_name.contains(m)) {
            continue;
        }
        for i in b0..b1 {
            // `format!(…)` — allocates, and its `{:?}` renderings are
            // not a stable wire format. `Arc::clone(&x)` is a cheap
            // refcount bump spelled as a path call, so only *method*
            // calls `.clone()` / `.to_string()` are flagged.
            let what = if toks[i].is_ident("format")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                Some("format!")
            } else if toks[i].is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|m| m.is_ident("to_string") || m.is_ident("clone"))
                && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
            {
                Some(if toks[i + 1].is_ident("clone") {
                    ".clone()"
                } else {
                    ".to_string()"
                })
            } else {
                None
            };
            if let Some(what) = what {
                findings.push(Finding::new(
                    Rule::HotPathAlloc,
                    path,
                    toks[i].line,
                    format!(
                        "`{what}` inside hot-path fn `{fn_name}` — share the payload \
                         (Arc) or use the canonical wire encoding; never a Debug \
                         rendering"
                    ),
                ));
            }
        }
    }
}

/// If the `for` loop starting at `i` iterates an expression that
/// mentions a hash-typed name, returns the loop's line.
fn for_loop_over_hash(toks: &[Tok], i: usize, limit: usize, hash_names: &[String]) -> Option<u32> {
    // Pattern part: scan to `in` at bracket depth 0 (bounded — a `for`
    // with no `in` nearby is not a loop header).
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut found_in = false;
    while j < limit && j < i + 48 {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && toks[j].kind == TokKind::Ident => {
                found_in = true;
                j += 1;
                break;
            }
            "{" | ";" => return None,
            _ => {}
        }
        j += 1;
    }
    if !found_in {
        return None;
    }
    // Iterated expression: up to `{` at depth 0.
    let mut depth = 0i32;
    while j < limit {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return None,
            ";" => return None,
            _ => {}
        }
        if toks[j].kind == TokKind::Ident && hash_names.contains(&toks[j].text) {
            return Some(toks[i].line);
        }
        j += 1;
    }
    None
}

/// Collects every name the file declares with a `HashMap`/`HashSet`
/// type: struct fields and bindings (`entries: HashMap<…>`), and
/// `let [mut] name = HashMap::new()`-style initializations.
fn collect_hash_typed_names(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Strip a leading path qualification (`std :: collections ::`).
        let mut j = i;
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        // Strip reference/mutability prefixes (`m: &mut HashMap<…>`).
        while j >= 1
            && (toks[j - 1].is_punct('&')
                || toks[j - 1].kind == TokKind::Lifetime
                || toks[j - 1].is_ident("mut")
                || toks[j - 1].is_ident("dyn"))
        {
            j -= 1;
        }
        // `name : HashMap` (field or binding type ascription) — but not
        // `path :: HashMap`, which the loop above already consumed.
        if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].kind == TokKind::Ident {
            push_unique(&mut names, &toks[j - 2].text);
            continue;
        }
        // `let [mut] name = HashMap::…`.
        if j >= 2 && toks[j - 1].is_punct('=') && toks[j - 2].kind == TokKind::Ident {
            let name = &toks[j - 2].text;
            let before = if j >= 3 { &toks[j - 3] } else { continue };
            if before.is_ident("let") || before.is_ident("mut") {
                push_unique(&mut names, name);
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if name != "_" && !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

/// Yields `(name, (body_start, body_end))` for every `fn` with a body,
/// where the range excludes the braces themselves.
pub(crate) fn fn_bodies(toks: &[Tok]) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            // Find the body `{` at paren/bracket depth 0 (a `;` first
            // means a trait method declaration without a body).
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut body = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = matching(toks, open);
                out.push((name, (open + 1, close)));
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, &tokenize(src))
    }

    #[test]
    fn flags_instant_and_system_time() {
        let src = "fn f() { let t = Instant::now(); let u = std::time::SystemTime::now(); }";
        let findings = run("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == Rule::WallClock));
    }

    #[test]
    fn clock_rs_is_exempt_from_wall_clock() {
        let src = "fn now() { Instant::now(); }";
        assert!(run("crates/types/src/clock.rs", src).is_empty());
    }

    #[test]
    fn flags_thread_spawn_but_not_in_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(run("crates/core/src/driver.rs", src).len(), 1);
        assert!(run("crates/core/src/pool.rs", src).is_empty());
        assert!(run("crates/network/src/engine.rs", src).is_empty());
    }

    #[test]
    fn flags_fs_and_sync_but_not_in_store() {
        let src = "fn f() { std::fs::write(\"a\", b\"x\").unwrap(); file.sync_all().unwrap(); }";
        let findings = run("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::FileIo));
        assert!(run("crates/store/src/wal.rs", src).is_empty());
    }

    #[test]
    fn flags_hashmap_iteration_only_in_canonical_fns() {
        let src = "struct S { entries: HashMap<u64, u64> }\n\
                   impl S {\n\
                   fn digest(&self) -> u64 { self.entries.iter().map(|(_, v)| v).sum() }\n\
                   fn lookup(&self) -> u64 { self.entries.iter().count() as u64 }\n\
                   }";
        let findings = run("crates/ledger/src/x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::UnorderedIter);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn flags_for_loop_over_hash_in_encode() {
        let src = "fn encode(m: &HashMap<u64, u64>, out: &mut Vec<u8>) {\n\
                   for (k, v) in m { out.push(*k as u8); out.push(*v as u8); }\n\
                   }";
        let findings = run("crates/network/src/wire.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn sorted_vec_iteration_in_digest_is_clean() {
        let src = "fn digest(entries: &[(u64, u64)]) -> u64 {\n\
                   let mut sorted: Vec<_> = entries.to_vec();\n\
                   sorted.sort();\n\
                   sorted.iter().map(|(k, _)| k).sum()\n\
                   }";
        assert!(run("crates/ledger/src/x.rs", src).is_empty());
    }

    #[test]
    fn depgraph_fns_are_canonical_regardless_of_name() {
        let src = "fn build(m: HashMap<u64, u64>) { for k in m.keys() { drop(k); } }";
        assert_eq!(run("crates/depgraph/src/graph.rs", src).len(), 1);
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_allocation_in_hot_path_fns_only() {
        let src = "fn encode(v: &V, out: &mut Vec<u8>) { out.extend(format!(\"{v:?}\").bytes()); }\n\
                   fn digest(v: &V) -> String { v.name.to_string() }\n\
                   fn multicast(dests: &[u64], m: &M) { for d in dests { route(*d, m.clone()); } }\n\
                   fn render(v: &V) -> String { format!(\"{v:?}\") }";
        let findings = run("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::HotPathAlloc));
        assert_eq!(
            findings.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "render() is not a hot-path fn"
        );
    }

    #[test]
    fn arc_clone_in_multicast_is_clean() {
        let src = "fn multicast(dests: &[u64], payload: Arc<M>) {\n\
                   for d in dests { route(*d, Arc::clone(&payload)); }\n\
                   }";
        assert!(run("crates/network/src/x.rs", src).is_empty());
    }

    #[test]
    fn string_literals_never_trip_rules() {
        let src = "fn f() { let s = \"Instant::now thread::spawn fs::write\"; drop(s); }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
