//! The rwset-coverage analyzer (DESIGN.md §12): for each contract in
//! `crates/contracts`, conservatively infer the keys its `execute`
//! implementation can read (through `StateReader::read`/`try_read`,
//! directly or via a state-taking helper) and write (into
//! `ExecOutcome::Commit`), and verify the declared `rw_set` covers
//! every inferred access path.
//!
//! The analysis is symbolic, per enum variant: a key is a *field* of
//! the operation (`Field("from")`), an *element* of one of its vector
//! fields (`Elem("sources")`), or a literal. Anything the analyzer
//! cannot resolve becomes `Unknown`, which is an error — the pass is
//! conservative in the direction OXII needs (declared ⊇ inferred ⊇
//! actual; an unanalyzable access can never be silently assumed
//! covered).

use crate::lexer::{matching, split_commas, Tok, TokKind};
use crate::report::{Finding, Rule};

/// A symbolic key: how an accessed key relates to the operation's
/// declared fields.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sym {
    /// A scalar field of the matched variant (`from`, `escrow`, …).
    Field(String),
    /// Any element of a vector field (`sources`, `reads`, …).
    Elem(String),
    /// A literal key (`Key(7)`).
    Lit(String),
    /// An expression the analyzer could not resolve (the payload is a
    /// short source snippet for the diagnostic).
    Unknown(String),
}

impl Sym {
    fn describe(&self) -> String {
        match self {
            Sym::Field(n) => format!("field `{n}`"),
            Sym::Elem(c) => format!("elements of `{c}`"),
            Sym::Lit(k) => format!("literal key `{k}`"),
            Sym::Unknown(what) => format!("unresolvable expression `{what}`"),
        }
    }
}

/// One match arm: the variant it handles, its binders, and its body.
struct Arm {
    variant: String,
    /// Variant-pattern binders (shorthand field names).
    binders: Vec<String>,
    /// Token range of the arm body (expression or block interior).
    body: (usize, usize),
    line: u32,
}

/// Binding environment while evaluating key expressions inside an arm.
#[derive(Default)]
struct Env {
    /// Variant-pattern binders → `Field(name)` when used as scalars.
    fields: Vec<String>,
    /// Loop/closure binders → the symbols of the iterated collection,
    /// valid only inside their token-range scope (two closures may
    /// reuse the same binder name for different collections).
    elems: Vec<(String, Vec<Sym>, (usize, usize))>,
    /// `let`-bound locals (declared-side) → their symbols.
    locals: Vec<(String, Vec<Sym>)>,
}

impl Env {
    /// Resolves `name` at token position `pos`. In-scope loop/closure
    /// binders shadow locals shadow variant fields.
    fn resolve_syms(&self, name: &str, pos: usize) -> Option<Vec<Sym>> {
        self.elems
            .iter()
            .rev()
            .find(|(n, _, (lo, hi))| n == name && (*lo..*hi).contains(&pos))
            .map(|(_, syms, _)| syms.clone())
            .or_else(|| {
                self.locals
                    .iter()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map(|(_, syms)| syms.clone())
            })
    }

    fn is_field(&self, name: &str) -> bool {
        self.fields.iter().any(|n| n == name)
    }
}

/// Checks one contract source file. Returns nothing when the file does
/// not define both a `fn rw_set` and a `fn execute` over the same op
/// enum (e.g. `traits.rs`).
#[must_use]
pub fn check_contract_file(path: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let bodies = crate::determinism::fn_bodies(toks);
    let Some(&(_, rw_body)) = bodies.iter().find(|(n, _)| n == "rw_set") else {
        return findings;
    };
    let Some(&(_, exec_body)) = bodies.iter().find(|(n, _)| n == "execute") else {
        return findings;
    };
    let Some((enum_name, rw_arms)) = find_enum_match(toks, rw_body, None) else {
        findings.push(Finding::new(
            Rule::RwsetCoverage,
            path,
            toks[rw_body.0].line,
            "could not parse the variant match inside `rw_set`",
        ));
        return findings;
    };
    let Some((_, exec_arms)) = find_enum_match(toks, exec_body, Some(&enum_name)) else {
        findings.push(Finding::new(
            Rule::RwsetCoverage,
            path,
            toks[exec_body.0].line,
            format!("could not find the `{enum_name}` match inside `execute`"),
        ));
        return findings;
    };
    let helpers = collect_state_helpers(toks, &bodies);

    // Declared sets, per variant.
    let mut declared: Vec<(String, Vec<Sym>, Vec<Sym>)> = Vec::new();
    for arm in &rw_arms {
        match declared_sets(toks, arm) {
            Some((reads, writes)) => declared.push((arm.variant.clone(), reads, writes)),
            None => findings.push(Finding::new(
                Rule::RwsetCoverage,
                path,
                arm.line,
                format!(
                    "no statically analyzable RwSet constructor in the \
                     `{enum_name}::{}` arm of `rw_set`",
                    arm.variant
                ),
            )),
        }
    }

    // Inferred accesses, per execute arm, checked against declarations.
    for arm in &exec_arms {
        if arm.variant == "_" {
            continue;
        }
        let Some((_, decl_reads, decl_writes)) =
            declared.iter().find(|(v, _, _)| *v == arm.variant)
        else {
            findings.push(Finding::new(
                Rule::RwsetCoverage,
                path,
                arm.line,
                format!("`{enum_name}::{}` is executed but has no declared rw_set arm", arm.variant),
            ));
            continue;
        };
        let (reads, writes) = infer_accesses(toks, arm, &helpers);
        for (sym, line) in reads {
            if !covers(decl_reads, &sym) {
                findings.push(Finding::new(
                    Rule::RwsetCoverage,
                    path,
                    line,
                    format!(
                        "read of {} in `{enum_name}::{}` is not covered by the declared read set",
                        sym.describe(),
                        arm.variant
                    ),
                ));
            }
        }
        for (sym, line) in writes {
            if !covers(decl_writes, &sym) {
                findings.push(Finding::new(
                    Rule::RwsetCoverage,
                    path,
                    line,
                    format!(
                        "write of {} in `{enum_name}::{}` is not covered by the declared write set",
                        sym.describe(),
                        arm.variant
                    ),
                ));
            }
        }
    }
    findings
}

/// `declared` covers `sym` iff an equal symbol is present. `Unknown`
/// is never covered (conservative), and an `Unknown` in the declared
/// set covers nothing.
fn covers(declared: &[Sym], sym: &Sym) -> bool {
    !matches!(sym, Sym::Unknown(_)) && declared.contains(sym)
}

// ---------------------------------------------------------------------
// Match-arm parsing
// ---------------------------------------------------------------------

/// Finds a `match` inside `body` whose arms are `Enum::Variant`
/// patterns (optionally constrained to a specific enum name) and
/// parses its arms.
fn find_enum_match(
    toks: &[Tok],
    body: (usize, usize),
    want_enum: Option<&str>,
) -> Option<(String, Vec<Arm>)> {
    let (b0, b1) = body;
    let mut i = b0;
    while i < b1 {
        if toks[i].is_ident("match") {
            // Scrutinee runs to the `{` at depth 0.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < b1 {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < b1 {
                let close = matching(toks, j);
                if let Some(parsed) = parse_arms(toks, j + 1, close) {
                    let (enum_name, arms) = parsed;
                    if want_enum.is_none_or(|w| w == enum_name) {
                        return Some((enum_name.to_string(), arms));
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    None
}

/// Parses `Enum::Variant { binders } => body,` arms in `(start, end)`.
/// Returns the shared enum qualifier and the arms, or `None` when the
/// arms are not enum-path patterns.
fn parse_arms(toks: &[Tok], start: usize, end: usize) -> Option<(&str, Vec<Arm>)> {
    let mut arms = Vec::new();
    let mut enum_name: Option<&str> = None;
    let mut i = start;
    while i < end {
        let line = toks[i].line;
        // Pattern: `_`, or `Path :: Variant` + optional `{…}` / `(…)`.
        let variant;
        let mut binders = Vec::new();
        if toks[i].is_ident("_") {
            variant = "_".to_string();
            i += 1;
        } else if toks[i].kind == TokKind::Ident {
            // Collect the `::`-separated path.
            let mut path_idents = vec![i];
            let mut j = i + 1;
            while j + 2 < end
                && toks[j].is_punct(':')
                && toks[j + 1].is_punct(':')
                && toks[j + 2].kind == TokKind::Ident
            {
                path_idents.push(j + 2);
                j += 3;
            }
            if path_idents.len() < 2 {
                return None;
            }
            let qualifier = &toks[path_idents[0]].text;
            match enum_name {
                None => enum_name = Some(qualifier),
                Some(e) if e == qualifier => {}
                Some(_) => return None,
            }
            variant = toks[*path_idents.last().unwrap()].text.clone();
            // Optional binder block.
            if j < end && (toks[j].is_punct('{') || toks[j].is_punct('(')) {
                let bclose = matching(toks, j);
                for tok in toks.iter().take(bclose).skip(j + 1) {
                    if tok.kind == TokKind::Ident
                        && !tok.is_ident("mut")
                        && !tok.is_ident("ref")
                    {
                        binders.push(tok.text.clone());
                    }
                }
                j = bclose + 1;
            }
            i = j;
        } else {
            return None;
        }
        // `=>`.
        if !(i + 1 < end && toks[i].is_punct('=') && toks[i + 1].is_punct('>')) {
            return None;
        }
        i += 2;
        // Body: a block, or an expression up to the `,` at depth 0.
        let body;
        if i < end && toks[i].is_punct('{') {
            let bclose = matching(toks, i);
            body = (i + 1, bclose);
            i = bclose + 1;
            if i < end && toks[i].is_punct(',') {
                i += 1;
            }
        } else {
            let expr_start = i;
            let mut depth = 0i32;
            while i < end {
                match toks[i].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            body = (expr_start, i);
            if i < end {
                i += 1; // consume the comma
            }
        }
        arms.push(Arm {
            variant,
            binders,
            body,
            line,
        });
    }
    enum_name.map(|e| (e, arms))
}

// ---------------------------------------------------------------------
// Declared side: `rw_set`
// ---------------------------------------------------------------------

/// Evaluates one `rw_set` arm to its declared (reads, writes) symbols.
fn declared_sets(toks: &[Tok], arm: &Arm) -> Option<(Vec<Sym>, Vec<Sym>)> {
    let mut env = Env {
        fields: arm.binders.clone(),
        ..Env::default()
    };
    let (b0, b1) = arm.body;
    // Single-level `let` resolution (e.g. `let keys: Vec<Key> = …;`).
    let mut i = b0;
    while i < b1 {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < b1 && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < b1 && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                // Skip an optional `: Type` to the `=` at depth 0.
                let mut depth = 0i32;
                let mut k = j + 1;
                while k < b1 {
                    match toks[k].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=" if depth == 0 => break,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if k < b1 && toks[k].is_punct('=') {
                    let expr_start = k + 1;
                    let mut depth = 0i32;
                    let mut e = expr_start;
                    while e < b1 {
                        match toks[e].text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                        e += 1;
                    }
                    let syms = eval_keys(toks, expr_start, e, &env)
                        .into_iter()
                        .map(|(s, _)| s)
                        .collect();
                    env.locals.push((name, syms));
                    i = e;
                    continue;
                }
            }
        }
        i += 1;
    }
    // The RwSet constructor call.
    let mut i = b0;
    while i + 3 < b1 {
        if toks[i].is_ident("RwSet")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            let ctor = toks[i + 3].text.as_str();
            let close = matching(toks, i + 4);
            let args = split_commas(toks, i + 5, close);
            let eval_arg = |a: Option<&(usize, usize)>| -> Vec<Sym> {
                a.map(|&(lo, hi)| {
                    eval_keys(toks, lo, hi, &env)
                        .into_iter()
                        .map(|(s, _)| s)
                        .collect()
                })
                .unwrap_or_default()
            };
            return match ctor {
                "new" => Some((eval_arg(args.first()), eval_arg(args.get(1)))),
                "read_only" => Some((eval_arg(args.first()), Vec::new())),
                "write_only" => Some((Vec::new(), eval_arg(args.first()))),
                _ => None,
            };
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Inferred side: `execute`
// ---------------------------------------------------------------------

/// A helper function that takes the state reader: maps its name to the
/// indices of parameters it passes to `read`/`try_read`.
struct StateHelper {
    name: String,
    key_params: Vec<usize>,
}

fn collect_state_helpers(
    toks: &[Tok],
    bodies: &[(String, (usize, usize))],
) -> Vec<StateHelper> {
    let mut helpers = Vec::new();
    for (name, &(b0, b1)) in bodies.iter().map(|(n, b)| (n, b)) {
        if name == "execute" {
            continue;
        }
        // Parameter list: the `(…)` right before the body.
        let Some(open) = (0..b0.saturating_sub(1))
            .rev()
            .find(|&k| toks[k].is_punct('(') && matching(toks, k) < b0)
            .filter(|&k| {
                let close = matching(toks, k);
                // The param list is the paren group whose close is just
                // before the body (allowing `-> Type` in between).
                close < b0 && (close + 1..b0 - 1).all(|m| !toks[m].is_punct('{'))
            })
        else {
            continue;
        };
        let close = matching(toks, open);
        let mut params = Vec::new();
        let mut takes_state = false;
        for (lo, hi) in split_commas(toks, open + 1, close) {
            let mut p = lo;
            while p < hi && (toks[p].is_punct('&') || toks[p].is_ident("mut")) {
                p += 1;
            }
            if p < hi && toks[p].kind == TokKind::Ident {
                params.push(toks[p].text.clone());
            }
            if (lo..hi).any(|k| toks[k].is_ident("StateReader")) {
                takes_state = true;
            }
        }
        if !takes_state {
            continue;
        }
        // Which params reach `read`/`try_read` inside the body?
        let mut key_params = Vec::new();
        let mut i = b0;
        while i + 3 < b1 {
            if toks[i].is_punct('.')
                && (toks[i + 1].is_ident("read") || toks[i + 1].is_ident("try_read"))
                && toks[i + 2].is_punct('(')
            {
                let aclose = matching(toks, i + 2);
                for tok in toks.iter().take(aclose).skip(i + 3) {
                    if tok.kind == TokKind::Ident {
                        if let Some(idx) = params.iter().position(|p| *p == tok.text) {
                            if !key_params.contains(&idx) {
                                key_params.push(idx);
                            }
                        }
                    }
                }
                i = aclose;
            }
            i += 1;
        }
        if !key_params.is_empty() {
            helpers.push(StateHelper {
                name: name.clone(),
                key_params,
            });
        }
    }
    helpers
}

/// Infers the (reads, writes) of one `execute` arm, each symbol tagged
/// with the source line of the access.
#[allow(clippy::type_complexity)]
fn infer_accesses(
    toks: &[Tok],
    arm: &Arm,
    helpers: &[StateHelper],
) -> (Vec<(Sym, u32)>, Vec<(Sym, u32)>) {
    let mut env = Env {
        fields: arm.binders.clone(),
        ..Env::default()
    };
    let (b0, b1) = arm.body;

    // Pre-pass 1: loop and closure binders become element symbols of
    // the collection they iterate, scoped to the loop body / closure
    // call so reused binder names (`|k| …` twice) cannot collide.
    let mut i = b0;
    while i < b1 {
        if toks[i].is_ident("for") && toks.get(i + 1).is_some_and(|t| !t.is_punct('<')) {
            if let Some((pat_idents, coll, scope)) = parse_for_header(toks, i, b1) {
                let syms = collection_syms(&coll, &env, i);
                for p in pat_idents {
                    env.elems.push((p, syms.clone(), scope));
                }
            }
        }
        // `name.iter().map(|pat| …)` / `.for_each(|pat| …)` etc.
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_ident("iter") || t.is_ident("into_iter"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 5).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 7).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 8).is_some_and(|t| t.is_punct('|'))
        {
            let coll = toks[i].text.clone();
            let syms = collection_syms(&coll, &env, i);
            let scope = (i + 8, matching(toks, i + 7));
            let mut k = i + 9;
            while k < b1 && !toks[k].is_punct('|') {
                if toks[k].kind == TokKind::Ident && !toks[k].is_ident("mut") {
                    env.elems.push((toks[k].text.clone(), syms.clone(), scope));
                }
                k += 1;
            }
        }
        i += 1;
    }

    // Pre-pass 2: local accumulator vectors and their pushed keys.
    let mut vec_locals: Vec<String> = Vec::new();
    let mut i = b0;
    while i + 3 < b1 {
        if toks[i].is_ident("let")
            && toks[i + 1].is_ident("mut")
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].is_punct('=')
            && toks.get(i + 4).is_some_and(|t| t.is_ident("Vec") || t.is_ident("vec"))
        {
            vec_locals.push(toks[i + 2].text.clone());
        }
        i += 1;
    }
    let mut pushes: Vec<(String, Vec<(Sym, u32)>)> =
        vec_locals.iter().map(|n| (n.clone(), Vec::new())).collect();
    let mut i = b0;
    while i + 3 < b1 {
        if toks[i].kind == TokKind::Ident
            && toks[i + 1].is_punct('.')
            && toks[i + 2].is_ident("push")
            && toks[i + 3].is_punct('(')
        {
            if let Some(slot) = pushes.iter_mut().find(|(n, _)| *n == toks[i].text) {
                let aclose = matching(toks, i + 3);
                let keys = if toks.get(i + 4).is_some_and(|t| t.is_punct('(')) {
                    // push((K, V)): evaluate the tuple's first component.
                    let tclose = matching(toks, i + 4);
                    let parts = split_commas(toks, i + 5, tclose);
                    parts
                        .first()
                        .map(|&(lo, hi)| eval_keys(toks, lo, hi, &env))
                        .unwrap_or_default()
                } else {
                    vec![(
                        Sym::Unknown(snippet(toks, i + 4, aclose)),
                        toks[i].line,
                    )]
                };
                slot.1.extend(keys);
                i = aclose;
            }
        }
        i += 1;
    }

    // Reads: `state.read(…)` / `state.try_read(…)` and helper calls.
    let mut reads = Vec::new();
    let mut i = b0;
    while i < b1 {
        if i + 3 < b1
            && toks[i].is_ident("state")
            && toks[i + 1].is_punct('.')
            && (toks[i + 2].is_ident("read") || toks[i + 2].is_ident("try_read"))
            && toks[i + 3].is_punct('(')
        {
            let aclose = matching(toks, i + 3);
            reads.extend(eval_keys(toks, i + 4, aclose, &env));
            i += 4; // keep scanning inside the args (nested reads)
            continue;
        }
        if toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(h) = helpers.iter().find(|h| h.name == toks[i].text) {
                let aclose = matching(toks, i + 1);
                let args = split_commas(toks, i + 2, aclose);
                for &idx in &h.key_params {
                    if let Some(&(lo, hi)) = args.get(idx) {
                        reads.extend(eval_keys(toks, lo, hi, &env));
                    } else {
                        reads.push((
                            Sym::Unknown(format!("{}(… missing arg {idx})", h.name)),
                            toks[i].line,
                        ));
                    }
                }
            }
        }
        i += 1;
    }

    // Writes: every `ExecOutcome::Commit(…)`.
    let mut writes = Vec::new();
    let mut i = b0;
    while i + 5 < b1 {
        if toks[i].is_ident("ExecOutcome")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("Commit")
            && toks[i + 4].is_punct('(')
        {
            let aclose = matching(toks, i + 4);
            writes.extend(eval_commit(toks, i + 5, aclose, &env, &pushes));
            i = aclose;
        }
        i += 1;
    }
    (reads, writes)
}

/// Parses a `for PAT in EXPR {` header: returns the pattern's binder
/// idents, the head identifier of the iterated expression, and the
/// token range of the loop body (the binders' scope).
#[allow(clippy::type_complexity)]
fn parse_for_header(
    toks: &[Tok],
    i: usize,
    limit: usize,
) -> Option<(Vec<String>, String, (usize, usize))> {
    let mut pat_idents = Vec::new();
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut found_in = false;
    while j < limit && j < i + 48 {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && toks[j].kind == TokKind::Ident => {
                found_in = true;
                j += 1;
                break;
            }
            "{" | ";" => return None,
            _ => {
                if toks[j].kind == TokKind::Ident && !toks[j].is_ident("mut") {
                    pat_idents.push(toks[j].text.clone());
                }
            }
        }
        j += 1;
    }
    if !found_in {
        return None;
    }
    while j < limit && (toks[j].is_punct('&') || toks[j].is_ident("mut")) {
        j += 1;
    }
    if !(j < limit && toks[j].kind == TokKind::Ident) {
        return None;
    }
    let coll = toks[j].text.clone();
    // Loop body: the `{` at depth 0 after the iterated expression.
    let mut depth = 0i32;
    while j < limit {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => {
                return Some((pat_idents, coll, (j + 1, matching(toks, j))));
            }
            ";" => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// The element symbols produced by iterating collection `name` (seen
/// at token position `pos`).
fn collection_syms(name: &str, env: &Env, pos: usize) -> Vec<Sym> {
    if let Some(syms) = env.resolve_syms(name, pos) {
        syms
    } else if env.is_field(name) {
        vec![Sym::Elem(name.to_string())]
    } else {
        vec![Sym::Unknown(format!("iteration over `{name}`"))]
    }
}

/// Evaluates a key expression to its symbols (with source lines).
fn eval_keys(toks: &[Tok], mut lo: usize, mut hi: usize, env: &Env) -> Vec<(Sym, u32)> {
    while lo < hi && (toks[lo].is_punct('&') || toks[lo].is_punct('*')) {
        lo += 1;
    }
    // Tolerate the trailing comma of multiline call formatting.
    while hi > lo && toks[hi - 1].is_punct(',') {
        hi -= 1;
    }
    if lo >= hi {
        return Vec::new();
    }
    let line = toks[lo].line;
    // `[a, b, …]` array literal.
    if toks[lo].is_punct('[') {
        let close = matching(toks, lo);
        return split_commas(toks, lo + 1, close)
            .into_iter()
            .flat_map(|(a, b)| eval_keys(toks, a, b, env))
            .collect();
    }
    // `vec![…]`.
    if toks[lo].is_ident("vec")
        && toks.get(lo + 1).is_some_and(|t| t.is_punct('!'))
        && toks.get(lo + 2).is_some_and(|t| t.is_punct('['))
    {
        let close = matching(toks, lo + 2);
        return split_commas(toks, lo + 3, close)
            .into_iter()
            .flat_map(|(a, b)| eval_keys(toks, a, b, env))
            .collect();
    }
    // `Vec::new()` / `Vec::with_capacity(…)` → empty.
    if toks[lo].is_ident("Vec") {
        return Vec::new();
    }
    // `Key(LIT)`.
    if toks[lo].is_ident("Key")
        && toks.get(lo + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(lo + 2).is_some_and(|t| t.kind == TokKind::Num)
    {
        return vec![(Sym::Lit(toks[lo + 2].text.clone()), line)];
    }
    if toks[lo].kind != TokKind::Ident {
        return vec![(Sym::Unknown(snippet(toks, lo, hi)), line)];
    }
    let name = toks[lo].text.clone();
    let head_is_field = env.is_field(&name) && env.resolve_syms(&name, lo).is_none();
    let mut cur: Vec<Sym> = if let Some(syms) = env.resolve_syms(&name, lo) {
        syms
    } else if head_is_field {
        vec![Sym::Field(name.clone())]
    } else {
        vec![Sym::Unknown(name.clone())]
    };
    let mut i = lo + 1;
    if i >= hi {
        return cur.into_iter().map(|s| (s, line)).collect();
    }
    // Method chain.
    let mut iterated = false;
    while i < hi && toks[i].is_punct('.') {
        let Some(method) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            return vec![(Sym::Unknown(snippet(toks, lo, hi)), line)];
        };
        let Some(open) = (i + 2 < hi && toks[i + 2].is_punct('(')).then_some(i + 2) else {
            return vec![(Sym::Unknown(snippet(toks, lo, hi)), line)];
        };
        let close = matching(toks, open);
        match method.text.as_str() {
            "iter" | "into_iter" | "iter_mut" => {
                if head_is_field && !iterated {
                    cur = vec![Sym::Elem(name.clone())];
                }
                iterated = true;
            }
            "copied" | "cloned" | "collect" | "clone" | "to_vec" => {}
            "map" => {
                if !closure_preserves_element(toks, open + 1, close) {
                    return vec![(Sym::Unknown(snippet(toks, lo, hi)), line)];
                }
            }
            "chain" => {
                cur.extend(
                    eval_keys(toks, open + 1, close, env)
                        .into_iter()
                        .map(|(s, _)| s),
                );
            }
            _ => return vec![(Sym::Unknown(snippet(toks, lo, hi)), line)],
        }
        i = close + 1;
    }
    if i < hi {
        return vec![(Sym::Unknown(snippet(toks, lo, hi)), line)];
    }
    cur.into_iter().map(|s| (s, line)).collect()
}

/// Whether a `.map(|pat| body)` closure in `(start, end)` is a pure
/// element projection (returns one of its binders, a deref of one, or
/// a tuple whose first component is one — the shapes the contracts
/// use), so the chain's element identity is preserved.
fn closure_preserves_element(toks: &[Tok], start: usize, end: usize) -> bool {
    if start >= end || !toks[start].is_punct('|') {
        return false;
    }
    let mut j = start + 1;
    let mut binders = Vec::new();
    while j < end && !toks[j].is_punct('|') {
        if toks[j].kind == TokKind::Ident && !toks[j].is_ident("mut") {
            binders.push(toks[j].text.as_str());
        }
        j += 1;
    }
    if j >= end {
        return false;
    }
    let mut b = j + 1; // body start
    while b < end && (toks[b].is_punct('*') || toks[b].is_punct('&')) {
        b += 1;
    }
    // `|…| x` or `|…| *x`.
    if b + 1 == end && toks[b].kind == TokKind::Ident {
        return binders.contains(&toks[b].text.as_str());
    }
    // `|…| (x, …)` — tuple whose first component is a binder.
    if b < end && toks[b].is_punct('(') {
        let close = matching(toks, b);
        if close + 1 == end {
            if let Some(&(lo, hi)) = split_commas(toks, b + 1, close).first() {
                let mut f = lo;
                while f < hi && (toks[f].is_punct('*') || toks[f].is_punct('&')) {
                    f += 1;
                }
                return f + 1 == hi
                    && toks[f].kind == TokKind::Ident
                    && binders.contains(&toks[f].text.as_str());
            }
        }
    }
    false
}

/// Evaluates the argument of `ExecOutcome::Commit(…)` to the written
/// key symbols.
fn eval_commit(
    toks: &[Tok],
    lo: usize,
    mut hi: usize,
    env: &Env,
    pushes: &[(String, Vec<(Sym, u32)>)],
) -> Vec<(Sym, u32)> {
    // Tolerate the trailing comma of multiline call formatting.
    while hi > lo && toks[hi - 1].is_punct(',') {
        hi -= 1;
    }
    if lo >= hi {
        return Vec::new();
    }
    let line = toks[lo].line;
    // `Vec::new()` / `vec![]` → no writes.
    if toks[lo].is_ident("Vec") {
        return Vec::new();
    }
    // `vec![(K1, V1), …]`.
    if toks[lo].is_ident("vec")
        && toks.get(lo + 1).is_some_and(|t| t.is_punct('!'))
        && toks.get(lo + 2).is_some_and(|t| t.is_punct('['))
    {
        let close = matching(toks, lo + 2);
        let mut out = Vec::new();
        for (a, b) in split_commas(toks, lo + 3, close) {
            if a < b && toks[a].is_punct('(') {
                let tclose = matching(toks, a);
                if let Some(&(klo, khi)) = split_commas(toks, a + 1, tclose).first() {
                    out.extend(eval_keys(toks, klo, khi, env));
                    continue;
                }
            }
            out.push((Sym::Unknown(snippet(toks, a, b)), toks[a].line));
        }
        return out;
    }
    if toks[lo].kind == TokKind::Ident {
        // `Commit(writes)` where `writes` is a tracked accumulator.
        if lo + 1 == hi {
            if let Some((_, keys)) = pushes.iter().find(|(n, _)| *n == toks[lo].text) {
                return keys.clone();
            }
        }
        // `Commit(coll.into_iter().map(|k| (k, …)).collect())`: the
        // written keys are the elements of `coll`.
        let name = &toks[lo].text;
        let mut i = lo + 1;
        let mut saw_iter = false;
        let mut projection_ok = false;
        while i < hi && toks[i].is_punct('.') {
            let Some(method) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                break;
            };
            let Some(open) = (i + 2 < hi && toks[i + 2].is_punct('(')).then_some(i + 2) else {
                break;
            };
            let close = matching(toks, open);
            match method.text.as_str() {
                "iter" | "into_iter" => saw_iter = true,
                "map" => projection_ok = closure_preserves_element(toks, open + 1, close),
                "collect" | "copied" | "cloned" => {}
                _ => {
                    saw_iter = false;
                    break;
                }
            }
            i = close + 1;
        }
        if saw_iter && projection_ok && i >= hi {
            return collection_syms(name, env, lo)
                .into_iter()
                .map(|s| (s, line))
                .collect();
        }
    }
    vec![(Sym::Unknown(snippet(toks, lo, hi)), line)]
}

/// A short source reconstruction for diagnostics.
fn snippet(toks: &[Tok], lo: usize, hi: usize) -> String {
    let mut out = String::new();
    for t in toks.iter().take(hi.min(lo + 12)).skip(lo) {
        if !out.is_empty()
            && t.kind != TokKind::Punct
            && !out.ends_with(['(', '[', '.', ':', '&', '*'])
        {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    if hi > lo + 12 {
        out.push('…');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{strip_cfg_test, tokenize};

    fn run(src: &str) -> Vec<Finding> {
        check_contract_file("crates/contracts/src/fake.rs", &strip_cfg_test(&tokenize(src)))
    }

    const GOOD: &str = r#"
impl Op {
    pub fn rw_set(&self) -> RwSet {
        match self {
            Op::Move { from, to } => RwSet::new([*from, *to], [*from, *to]),
            Op::Fan { sources, to } => {
                let keys: Vec<Key> = sources.iter().map(|(k, _)| *k).chain([*to]).collect();
                RwSet::new(keys.clone(), keys)
            }
            Op::Look { key } => RwSet::read_only([*key]),
        }
    }
}
fn helper(state: &dyn StateReader, key: Key) -> Option<i64> {
    state.try_read(key).and_then(|v| v.as_int())
}
impl Contract for C {
    fn execute(&self, tx: &Transaction, state: &dyn StateReader) -> ExecOutcome {
        let Some(op) = Op::decode(tx.payload()) else { return ExecOutcome::Abort("bad".into()); };
        match op {
            Op::Move { from, to } => {
                let a = helper(state, from).unwrap_or(0);
                let b = state.read(to).as_int().unwrap_or(0);
                ExecOutcome::Commit(vec![(from, Value::Int(a)), (to, Value::Int(b))])
            }
            Op::Fan { sources, to } => {
                let mut writes = Vec::with_capacity(sources.len() + 1);
                for (key, share) in &sources {
                    let bal = helper(state, *key).unwrap_or(0);
                    writes.push((*key, Value::Int(bal - share)));
                }
                let dst = state.read(to).as_int().unwrap_or(0);
                writes.push((to, Value::Int(dst)));
                ExecOutcome::Commit(writes)
            }
            Op::Look { key } => {
                let _ = state.read(key);
                ExecOutcome::Commit(Vec::new())
            }
        }
    }
}
"#;

    #[test]
    fn covered_contract_is_clean() {
        let findings = run(GOOD);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undeclared_scalar_read_is_flagged() {
        // `to` is read but only `from` is declared readable.
        let src = GOOD.replace(
            "Op::Move { from, to } => RwSet::new([*from, *to], [*from, *to])",
            "Op::Move { from, to } => RwSet::new([*from], [*from, *to])",
        );
        let findings = run(&src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("read of field `to`"), "{findings:?}");
    }

    #[test]
    fn undeclared_vector_write_is_flagged() {
        // Fan writes elements of `sources` + `to`; declare only `to`.
        let src = GOOD.replace(
            "                let keys: Vec<Key> = sources.iter().map(|(k, _)| *k).chain([*to]).collect();\n                RwSet::new(keys.clone(), keys)",
            "                RwSet::new([*to], [*to])",
        );
        let findings = run(&src);
        // Reads of elements-of-sources and writes of elements-of-sources.
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("write of elements of `sources`")),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("read of elements of `sources`")),
            "{findings:?}"
        );
    }

    #[test]
    fn unanalyzable_access_is_an_error_not_a_pass() {
        let src = GOOD.replace("state.read(to)", "state.read(derive(to))");
        let findings = run(&src);
        assert!(
            findings.iter().any(|f| f.message.contains("unresolvable")),
            "{findings:?}"
        );
    }

    #[test]
    fn mix_style_iterator_chains_are_covered() {
        let src = r#"
impl Op {
    pub fn rw_set(&self) -> RwSet {
        match self {
            Op::Mix { reads, writes } => {
                RwSet::new(reads.iter().copied(), writes.iter().copied())
            }
        }
    }
}
impl Contract for C {
    fn execute(&self, tx: &Transaction, state: &dyn StateReader) -> ExecOutcome {
        match op {
            Op::Mix { reads, writes } => {
                let sum: i64 = reads.iter().map(|k| state.read(*k).as_int().unwrap_or(0)).sum();
                ExecOutcome::Commit(writes.into_iter().map(|k| (k, Value::Int(sum))).collect())
            }
        }
    }
}
"#;
        let findings = run(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn executed_variant_without_declaration_is_flagged() {
        let src = r#"
fn rw_set(&self) -> RwSet {
    match self {
        Op::A { k } => RwSet::new([*k], [*k]),
    }
}
fn execute(&self, tx: &Transaction, state: &dyn StateReader) -> ExecOutcome {
    match op {
        Op::A { k } => { let _ = state.read(k); ExecOutcome::Commit(Vec::new()) }
        Op::B { k } => { let _ = state.read(k); ExecOutcome::Commit(Vec::new()) }
    }
}
"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no declared rw_set arm"));
    }

    #[test]
    fn files_without_contracts_are_skipped() {
        assert!(run("pub struct Plain; impl Plain { fn go(&self) {} }").is_empty());
    }
}
