//! Suppression machinery: inline `lint:allow` markers and the
//! workspace `lint.allow` allowlist — both re-verified, so a
//! suppression that no longer suppresses anything is itself an error.
//!
//! Inline marker grammar (inside a `//` comment, on the violating line
//! or above it — blank lines and continuation comments between the
//! marker and the code it covers are skipped):
//!
//! ```text
//! // lint:allow(wall-clock) — the watchdog measures real elapsed time
//! // lint:allow(file-io, thread-spawn) -- justification covers both
//! ```
//!
//! The justification (after `—`, `--`, or `:`) is mandatory: an
//! unjustified marker is reported as `stale-allow` even if it would
//! otherwise suppress a finding.

use crate::report::{Finding, Rule};

/// One parsed inline marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// The rules this marker suppresses.
    pub rules: Vec<Rule>,
    /// 1-indexed line of the marker comment.
    pub line: u32,
    /// 1-indexed line of the first *code* line at or below the marker —
    /// the line the marker covers besides its own. Blank lines and
    /// further `//` comment lines between marker and code are skipped,
    /// so a justification may wrap onto continuation comments.
    pub target: u32,
    /// The written justification (may be empty — then the marker is
    /// reported stale).
    pub justification: String,
    /// Unparseable rule ids found in the marker, reported verbatim.
    pub unknown: Vec<String>,
}

/// Extracts every `lint:allow` marker from source text. Markers live
/// in plain `//` comments (which the lexer discards, so this parses
/// the comment list instead); doc comments (`///`, `//!`) are skipped
/// so that *documentation about* markers never registers as one, and
/// marker-shaped text inside string literals is ignored.
#[must_use]
pub fn parse_markers(src: &str) -> Vec<AllowMarker> {
    let lines: Vec<&str> = src.lines().collect();
    let mut markers = Vec::new();
    for (line_no, comment) in crate::lexer::line_comments(src) {
        if comment.starts_with("///") || comment.starts_with("//!") {
            continue;
        }
        let Some(at) = comment.find("lint:allow(") else {
            continue;
        };
        let rest = &comment[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let mut rules = Vec::new();
        let mut unknown = Vec::new();
        for id in rest[..close].split(',') {
            let id = id.trim();
            if id.is_empty() {
                continue;
            }
            match Rule::from_id(id) {
                Some(rule) => rules.push(rule),
                None => unknown.push(id.to_string()),
            }
        }
        let after = rest[close + 1..].trim_start();
        let justification = after
            .strip_prefix('—')
            .or_else(|| after.strip_prefix("--"))
            .or_else(|| after.strip_prefix(':'))
            .unwrap_or("")
            .trim()
            .to_string();
        let mut target = line_no + 1;
        while lines
            .get(target as usize - 1)
            .map(|raw| raw.trim())
            .is_some_and(|t| t.is_empty() || t.starts_with("//"))
        {
            target += 1;
        }
        markers.push(AllowMarker {
            rules,
            line: line_no,
            target,
            justification,
            unknown,
        });
    }
    markers
}

/// Applies inline markers to `findings`: a marker suppresses findings
/// of its rules on its own line or the next code line. Returns the
/// surviving findings plus `stale-allow` findings for markers that are
/// unjustified, name unknown rules, or suppress nothing. The number of
/// suppressed findings is added to `*suppressions`.
#[must_use]
pub fn apply_markers(
    path: &str,
    markers: &[AllowMarker],
    findings: Vec<Finding>,
    suppressions: &mut usize,
) -> Vec<Finding> {
    let mut used = vec![false; markers.len()];
    let mut out: Vec<Finding> = Vec::with_capacity(findings.len());
    for finding in findings {
        let suppressed = markers.iter().enumerate().any(|(m, marker)| {
            let covers_line =
                finding.line == marker.line || finding.line == marker.target;
            let covers_rule = marker.rules.contains(&finding.rule);
            if covers_line && covers_rule {
                used[m] = true;
            }
            covers_line && covers_rule && !marker.justification.is_empty()
        });
        if suppressed {
            *suppressions += 1;
        } else {
            out.push(finding);
        }
    }
    for (m, marker) in markers.iter().enumerate() {
        for id in &marker.unknown {
            out.push(Finding::new(
                Rule::StaleAllow,
                path,
                marker.line,
                format!("lint:allow names unknown rule `{id}`"),
            ));
        }
        if marker.rules.is_empty() && marker.unknown.is_empty() {
            out.push(Finding::new(
                Rule::StaleAllow,
                path,
                marker.line,
                "lint:allow names no rule",
            ));
            continue;
        }
        if !marker.rules.is_empty() && marker.justification.is_empty() {
            out.push(Finding::new(
                Rule::StaleAllow,
                path,
                marker.line,
                "lint:allow carries no justification (write `— <why>` after the rule list)",
            ));
        } else if !marker.rules.is_empty() && !used[m] {
            out.push(Finding::new(
                Rule::StaleAllow,
                path,
                marker.line,
                format!(
                    "stale lint:allow({}): nothing on this or the next code line violates it",
                    marker
                        .rules
                        .iter()
                        .map(|r| r.id())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
    out
}

/// One entry of the workspace allowlist file (`lint.allow` at the
/// workspace root): `<rule> <path> — <justification>` per line,
/// suppressing every finding of `rule` in `path`.
#[derive(Debug, Clone)]
pub struct AllowlistEntry {
    /// The suppressed rule.
    pub rule: Rule,
    /// Workspace-relative path the suppression applies to.
    pub path: String,
    /// 1-indexed line in the allowlist file (for stale reports).
    pub line: u32,
    /// Mandatory justification.
    pub justification: String,
}

/// Parses the allowlist file. Unparseable lines and unknown rules come
/// back as `stale-allow` findings against the allowlist file itself.
#[must_use]
pub fn parse_allowlist(file_name: &str, src: &str) -> (Vec<AllowlistEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, justification) = match split_justification(line) {
            Some(parts) => parts,
            None => {
                findings.push(Finding::new(
                    Rule::StaleAllow,
                    file_name,
                    line_no,
                    "allowlist entry carries no justification (append `— <why>`)",
                ));
                continue;
            }
        };
        let mut fields = head.split_whitespace();
        let (Some(rule_id), Some(path), None) = (fields.next(), fields.next(), fields.next())
        else {
            findings.push(Finding::new(
                Rule::StaleAllow,
                file_name,
                line_no,
                "malformed allowlist entry (expected `<rule> <path> — <justification>`)",
            ));
            continue;
        };
        let Some(rule) = Rule::from_id(rule_id) else {
            findings.push(Finding::new(
                Rule::StaleAllow,
                file_name,
                line_no,
                format!("allowlist entry names unknown rule `{rule_id}`"),
            ));
            continue;
        };
        entries.push(AllowlistEntry {
            rule,
            path: path.to_string(),
            line: line_no,
            justification: justification.to_string(),
        });
    }
    (entries, findings)
}

fn split_justification(line: &str) -> Option<(&str, &str)> {
    for sep in ["—", "--"] {
        if let Some(at) = line.find(sep) {
            let j = line[at + sep.len()..].trim();
            if !j.is_empty() {
                return Some((line[..at].trim(), j));
            }
        }
    }
    None
}

/// Applies the allowlist to the workspace-wide finding set. An entry
/// that suppresses nothing becomes a `stale-allow` finding against the
/// allowlist file.
#[must_use]
pub fn apply_allowlist(
    file_name: &str,
    entries: &[AllowlistEntry],
    findings: Vec<Finding>,
    suppressions: &mut usize,
) -> Vec<Finding> {
    let mut used = vec![false; entries.len()];
    let mut out: Vec<Finding> = Vec::with_capacity(findings.len());
    for finding in findings {
        let mut suppressed = false;
        for (e, entry) in entries.iter().enumerate() {
            if entry.rule == finding.rule && entry.path == finding.path {
                used[e] = true;
                suppressed = true;
            }
        }
        if suppressed {
            *suppressions += 1;
        } else {
            out.push(finding);
        }
    }
    for (e, entry) in entries.iter().enumerate() {
        if !used[e] {
            out.push(Finding::new(
                Rule::StaleAllow,
                file_name,
                entry.line,
                format!(
                    "stale allowlist entry: no {} violation left in {}",
                    entry.rule, entry.path
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_parse_rules_and_justification() {
        let src = "let x = 1; // lint:allow(wall-clock, file-io) — measured on purpose\n";
        let markers = parse_markers(src);
        assert_eq!(markers.len(), 1);
        assert_eq!(markers[0].rules, vec![Rule::WallClock, Rule::FileIo]);
        assert_eq!(markers[0].justification, "measured on purpose");
    }

    #[test]
    fn marker_suppresses_same_and_next_line() {
        let src = "// lint:allow(wall-clock) — intended\ncall();\n";
        let markers = parse_markers(src);
        let mut n = 0;
        let out = apply_markers(
            "f.rs",
            &markers,
            vec![Finding::new(Rule::WallClock, "f.rs", 2, "x")],
            &mut n,
        );
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(n, 1);
    }

    #[test]
    fn marker_skips_continuation_comments_and_blank_lines() {
        let src = "// lint:allow(wall-clock) — a justification that\n// wraps onto a second comment line\n\ncall();\n";
        let markers = parse_markers(src);
        assert_eq!(markers[0].target, 4);
        let mut n = 0;
        let out = apply_markers(
            "f.rs",
            &markers,
            vec![Finding::new(Rule::WallClock, "f.rs", 4, "x")],
            &mut n,
        );
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(n, 1);
    }

    #[test]
    fn unjustified_marker_is_stale_even_when_matching() {
        let src = "// lint:allow(wall-clock)\ncall();\n";
        let markers = parse_markers(src);
        let mut n = 0;
        let out = apply_markers(
            "f.rs",
            &markers,
            vec![Finding::new(Rule::WallClock, "f.rs", 2, "x")],
            &mut n,
        );
        // The original finding survives AND the marker is reported.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|f| f.rule == Rule::StaleAllow));
        assert!(out.iter().any(|f| f.rule == Rule::WallClock));
    }

    #[test]
    fn marker_without_match_is_stale() {
        let src = "// lint:allow(wall-clock) — why\nclean();\n";
        let markers = parse_markers(src);
        let mut n = 0;
        let out = apply_markers("f.rs", &markers, vec![], &mut n);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::StaleAllow);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn allowlist_round_trip_and_stale() {
        let (entries, errs) =
            parse_allowlist("lint.allow", "# c\nfile-io crates/bench/src/table.rs — CSV output\n");
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(entries.len(), 1);
        let mut n = 0;
        let out = apply_allowlist(
            "lint.allow",
            &entries,
            vec![Finding::new(Rule::FileIo, "crates/bench/src/table.rs", 9, "x")],
            &mut n,
        );
        assert!(out.is_empty());
        assert_eq!(n, 1);
        let out = apply_allowlist("lint.allow", &entries, vec![], &mut n);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::StaleAllow);
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        let (entries, errs) = parse_allowlist(
            "lint.allow",
            "file-io — missing path\nnot-a-rule a.rs — x\nfile-io a.rs\n",
        );
        assert!(entries.is_empty());
        assert_eq!(errs.len(), 3, "{errs:?}");
        assert!(errs.iter().all(|f| f.rule == Rule::StaleAllow));
    }
}
