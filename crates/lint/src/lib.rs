//! `parblock_lint` — workspace static analysis (DESIGN.md §12).
//!
//! Two analyzer families guard the invariants the rest of the system
//! merely assumes:
//!
//! 1. **rwset coverage** ([`rwset`]): a contract's declared read/write
//!    set must cover every key its `execute` can touch — OXII's
//!    orderer schedules from declarations alone, so an under-declared
//!    set silently breaks conflict serializability.
//! 2. **determinism lints** ([`determinism`]): wall-clock reads,
//!    stray thread spawns, file I/O outside the storage crate, and
//!    unordered-map iteration in digest/wire/graph-emission code —
//!    the preconditions of the bit-reproducible simulation harness.
//!
//! Violations are errors unless suppressed by an inline
//! `// lint:allow(<rule>) — <justification>` marker or the workspace
//! `lint.allow` file; both are re-verified on every run ([`allow`]),
//! so a suppression that stops suppressing becomes an error itself.
//!
//! The crate is std-only by design: a hand-rolled lexer ([`lexer`])
//! keeps the gate dependency-free, so it can never be broken by the
//! code it gates.

pub mod allow;
pub mod determinism;
pub mod lexer;
pub mod report;
pub mod rwset;

use std::path::{Path, PathBuf};

pub use report::{Finding, Report, Rule};

/// How a file participates in analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Not analyzed at all: build output, vendored shims, and the lint
    /// crate's own known-bad fixtures.
    Skip,
    /// Integration tests, benches, and examples: exempt from every
    /// rule (they may spawn threads, read clocks, and write files).
    TestLike,
    /// Production code: all rules apply (with `#[cfg(test)]` items
    /// stripped first).
    Product,
}

/// Classifies a workspace-relative path (with `/` separators).
#[must_use]
pub fn classify(path: &str) -> FileClass {
    if path.starts_with("target/")
        || path.contains("/target/")
        || path.starts_with("shims/")
        || path.contains("tests/fixtures/")
    {
        return FileClass::Skip;
    }
    if path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.ends_with("build.rs")
    {
        return FileClass::TestLike;
    }
    FileClass::Product
}

/// Lints one source file given its workspace-relative `path` and raw
/// `src`, applying inline `lint:allow` markers. This is the unit the
/// fixture tests drive directly; [`run_workspace`] calls it per file
/// and then applies the `lint.allow` allowlist on top.
///
/// Returns `(findings, suppressions_honored)`.
#[must_use]
pub fn lint_source(path: &str, src: &str) -> (Vec<Finding>, usize) {
    match classify(path) {
        FileClass::Skip | FileClass::TestLike => (Vec::new(), 0),
        FileClass::Product => {
            let toks = lexer::strip_cfg_test(&lexer::tokenize(src));
            let mut findings = determinism::check_file(path, &toks);
            if path.contains("crates/contracts/src/") {
                findings.extend(rwset::check_contract_file(path, &toks));
            }
            let markers = allow::parse_markers(src);
            let mut suppressions = 0usize;
            let findings = allow::apply_markers(path, &markers, findings, &mut suppressions);
            (findings, suppressions)
        }
    }
}

/// Runs every analyzer over the workspace rooted at `root` and applies
/// the `lint.allow` allowlist (if present). Findings come back sorted
/// by `(path, line, rule)`.
///
/// # Errors
/// Propagates I/O errors from walking the tree or reading sources.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    let mut findings = Vec::new();
    for rel in &files {
        if classify(rel) != FileClass::Product {
            continue;
        }
        // lint:allow(file-io) — the linter must read the sources it analyzes
        let src = std::fs::read_to_string(root.join(rel))?;
        let (file_findings, suppressed) = lint_source(rel, &src);
        findings.extend(file_findings);
        report.suppressions += suppressed;
        report.files_scanned += 1;
    }
    // Workspace allowlist, re-verified against the surviving findings.
    let allow_path = root.join("lint.allow");
    if allow_path.exists() {
        // lint:allow(file-io) — the linter must read its own allowlist
        let src = std::fs::read_to_string(&allow_path)?;
        let (entries, mut parse_findings) = allow::parse_allowlist("lint.allow", &src);
        findings =
            allow::apply_allowlist("lint.allow", &entries, findings, &mut report.suppressions);
        findings.append(&mut parse_findings);
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    report.findings = findings;
    Ok(report)
}

/// Locates the workspace root by walking up from `start` to the first
/// directory containing a `Cargo.toml` with a `[workspace]` table.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.exists() {
            // lint:allow(file-io) — workspace-root discovery reads manifests
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Recursively collects `.rs` files as workspace-relative paths with
/// `/` separators, in a deterministic (sorted) order.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = Vec::new();
    // lint:allow(file-io) — the linter must walk the tree it analyzes
    for entry in std::fs::read_dir(dir)? {
        entries.push(entry?.path());
    }
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_tiers() {
        assert_eq!(classify("crates/core/src/driver.rs"), FileClass::Product);
        assert_eq!(classify("crates/ledger/tests/mvcc_props.rs"), FileClass::TestLike);
        assert_eq!(classify("shims/rand/src/lib.rs"), FileClass::Skip);
        assert_eq!(
            classify("crates/lint/tests/fixtures/bad_wall_clock.rs"),
            FileClass::Skip
        );
        assert_eq!(classify("target/debug/build/x.rs"), FileClass::Skip);
    }

    #[test]
    fn lint_source_end_to_end_with_marker() {
        let bad = "fn f() { let t = Instant::now(); }";
        let (findings, n) = lint_source("crates/core/src/x.rs", bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(n, 0);

        let allowed =
            "fn f() {\n    // lint:allow(wall-clock) — measuring real startup latency\n    let t = Instant::now();\n}";
        let (findings, n) = lint_source("crates/core/src/x.rs", allowed);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(n, 1);
    }

    #[test]
    fn test_like_files_are_exempt() {
        let bad = "fn f() { thread::spawn(|| Instant::now()); }";
        let (findings, _) = lint_source("crates/core/tests/e2e.rs", bad);
        assert!(findings.is_empty());
    }
}
