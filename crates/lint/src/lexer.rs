//! A comment- and string-aware Rust lexer.
//!
//! The analyzers in this crate work on token sequences, never on raw
//! text, so `Instant::now` inside a doc comment or a string literal can
//! never trip a rule. The lexer is deliberately small: it distinguishes
//! identifiers, literals and punctuation, tracks line numbers, and gets
//! Rust's awkward cases right (nested block comments, raw strings,
//! lifetimes vs char literals). It does **not** build a syntax tree —
//! the analyzers carry their own brace-tracked notion of scope.

/// What a token is, at the fidelity the analyzers need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `now`, …).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal.
    Num,
    /// A string, byte-string, or char literal (content not preserved
    /// verbatim — only that it *is* a literal matters to the rules).
    Str,
    /// A single punctuation character (`:`, `.`, `{`, …).
    Punct,
}

/// One token with its source line (1-indexed).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The token text (for `Str`, the raw literal including quotes).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` when this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` when this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Tokenizes `src`, discarding comments and whitespace.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: skip to end of line (the newline itself
                // is handled above so the count stays right).
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, which Rust nests.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (end, newlines) = scan_string(bytes, i);
                line += newlines;
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[i..end].to_string(),
                    line: start_line,
                });
                i = end;
            }
            'r' | 'b' if starts_string_prefix(bytes, i) => {
                let start_line = line;
                let (end, newlines) = scan_prefixed_string(src, bytes, i);
                line += newlines;
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[i..end].to_string(),
                    line: start_line,
                });
                i = end;
            }
            '\'' => {
                // Lifetime or char literal. A char literal is `'x'` or
                // `'\…'`; a lifetime is `'` followed by an identifier
                // with no closing quote.
                if bytes.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: skip the escaped character
                    // (so `'\''` closes on the *fourth* byte), then scan
                    // to the closing quote (covers `'\u{…}'`).
                    let mut j = i + 3;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: src[i..=j.min(bytes.len() - 1)].to_string(),
                        line,
                    });
                    i = j + 1;
                } else if bytes
                    .get(i + 2)
                    .is_some_and(|&b| b == b'\'')
                {
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: src[i..i + 3].to_string(),
                        line,
                    });
                    i += 3;
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_byte(bytes[j]) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Numbers: digits plus alphanumerics/underscore (covers
                // suffixes and hex). `1.5` lexes as Num(1) '.' Num(5),
                // which is fine — no analyzer interprets floats.
                let mut j = i + 1;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether position `i` starts a `r"`, `r#"`, `b"`, or `br#"` literal
/// (as opposed to an identifier that merely begins with `r` or `b`).
fn starts_string_prefix(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Scans a `r"…"`, `r#"…"#`, or `b"…"` literal starting at its prefix;
/// returns the index one past the close and the newlines crossed.
fn scan_prefixed_string(src: &str, bytes: &[u8], i: usize) -> (usize, u32) {
    // Skip the prefix (`r`, `b`, `br`, `rb` are not legal but harmless)
    // up to the `#`*`"` opener.
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') && src[i..=j].starts_with('b') && !src[i..=j].contains('r') {
        // Plain byte string `b"…"`: escapes apply.
        return scan_string(bytes, j);
    }
    // Raw string `r#*"…"#*`: no escapes, closes on a quote followed by
    // the same number of hashes.
    let mut line = 0u32;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'));
    j += 1;
    loop {
        match bytes.get(j) {
            None => break,
            Some(b'\n') => {
                line += 1;
                j += 1;
            }
            Some(b'"') => {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && bytes.get(k) == Some(&b'#') {
                    seen += 1;
                    k += 1;
                }
                j = k;
                if seen == hashes {
                    break;
                }
            }
            Some(_) => j += 1,
        }
    }
    (j, line)
}

/// Extracts every `//` line comment with its 1-indexed line number,
/// skipping string/char literals — so comment-shaped text inside a
/// string can never be mistaken for a real comment. Used by the
/// `lint:allow` marker parser (markers live in comments, which
/// [`tokenize`] discards).
#[must_use]
pub fn line_comments(src: &str) -> Vec<(u32, String)> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.push((line, src[start..i].to_string()));
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (end, newlines) = scan_string(bytes, i);
                line += newlines;
                i = end;
            }
            'r' | 'b' if starts_string_prefix(bytes, i) => {
                let (end, newlines) = scan_prefixed_string(src, bytes, i);
                line += newlines;
                i = end;
            }
            '\'' => {
                if bytes.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 3;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    i = j + 1;
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Scans a `"…"` literal starting at the opening quote; returns the
/// index one past the closing quote and how many newlines were crossed.
fn scan_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Removes every `#[cfg(test)]`-gated item from a token stream: test
/// modules (and functions) are exempt from all rules, so they are cut
/// out before any analyzer runs.
#[must_use]
pub fn strip_cfg_test(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // Skip the attribute itself: `# [ cfg ( test ) ]`.
            i += 7;
            // Then skip the gated item: to the first `;` at depth 0
            // (a gated `use`), or over the balanced brace block.
            let mut depth = 0i32;
            while i < toks.len() {
                let t = &toks[i];
                if depth == 0 && t.is_punct(';') {
                    i += 1;
                    break;
                }
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    toks.len() > i + 6
        && toks[i].is_punct('#')
        && toks[i + 1].is_punct('[')
        && toks[i + 2].is_ident("cfg")
        && toks[i + 3].is_punct('(')
        && toks[i + 4].is_ident("test")
        && toks[i + 5].is_punct(')')
        && toks[i + 6].is_punct(']')
}

/// Finds the index of the matching close bracket for the open bracket at
/// `open` (`(`/`)`, `[`/`]`, `{`/`}`), or `toks.len()` if unbalanced.
#[must_use]
pub fn matching(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return toks.len(),
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// Splits the token range `(start, end)` (exclusive of the enclosing
/// brackets) at top-level commas, returning the sub-ranges.
#[must_use]
pub fn split_commas(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut part_start = start;
    for (i, tok) in toks.iter().enumerate().take(end).skip(start) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                parts.push((part_start, i));
                part_start = i + 1;
            }
            _ => {}
        }
    }
    if part_start < end {
        parts.push((part_start, end));
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_not_idents() {
        let toks = tokenize(
            "// Instant::now in a comment\nlet s = \"Instant::now\"; /* SystemTime::now */ f();",
        );
        assert!(!toks.iter().any(|t| t.is_ident("Instant")));
        assert!(!toks.iter().any(|t| t.is_ident("SystemTime")));
        assert!(toks.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = tokenize("/* outer /* inner */ still comment */ real");
        assert_eq!(toks.len(), 1);
        assert!(toks[0].is_ident("real"));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        assert_eq!(texts(r##"x(r#"Instant::now"#)"##), vec!["x", "(", r##"r#"Instant::now"#"##, ")"]);
        let toks = tokenize("b\"bytes\" rest");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert!(toks[1].is_ident("rest"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = tokenize("a\n/* x\ny */\nb \"s\ntr\" c");
        let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        let c = toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!((a.line, b.line, c.line), (1, 4, 5));
    }

    #[test]
    fn strip_cfg_test_removes_gated_items() {
        let src = "fn keep() {}\n#[cfg(test)]\nmod tests { fn gone() { bad(); } }\nfn also_keep() {}";
        let toks = strip_cfg_test(&tokenize(src));
        assert!(toks.iter().any(|t| t.is_ident("keep")));
        assert!(toks.iter().any(|t| t.is_ident("also_keep")));
        assert!(!toks.iter().any(|t| t.is_ident("bad")));
    }

    #[test]
    fn strip_cfg_test_handles_gated_use() {
        let src = "#[cfg(test)] use std::x;\nfn keep() {}";
        let toks = strip_cfg_test(&tokenize(src));
        assert!(toks.iter().any(|t| t.is_ident("keep")));
        assert!(!toks.iter().any(|t| t.is_ident("std")));
    }

    #[test]
    fn matching_and_split_commas() {
        let toks = tokenize("f(a, (b, c), [d, e])");
        let open = 1;
        assert_eq!(matching(&toks, open), toks.len() - 1);
        let parts = split_commas(&toks, 2, toks.len() - 1);
        assert_eq!(parts.len(), 3);
    }
}
