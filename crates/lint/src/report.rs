//! Rule identifiers, findings, and the text/JSON renderers.

use std::fmt;

/// The analyzer families (DESIGN.md §12). Each has a stable kebab-case
/// id used in diagnostics, inline `lint:allow(<rule>)` markers, and the
/// `lint.allow` allowlist file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `Instant::now` / `SystemTime::now` outside `crates/types/src/clock.rs`.
    WallClock,
    /// `thread::spawn` outside the executor pool and the network engine.
    ThreadSpawn,
    /// File / fsync syscalls outside `parblock_store`.
    FileIo,
    /// `HashMap`/`HashSet` iteration inside digest, wire encode/decode,
    /// or dependency-graph-emission functions.
    UnorderedIter,
    /// A contract access path not covered by its declared read/write set.
    RwsetCoverage,
    /// `format!` / `.to_string()` / `.clone()` inside encode, digest,
    /// or multicast functions — per-item heap allocation on the hot
    /// path, and (for `format!`) a `Debug` rendering leaking into a
    /// wire or digest format.
    HotPathAlloc,
    /// An allow marker or allowlist entry that suppresses nothing (or
    /// carries no justification).
    StaleAllow,
}

/// Every rule, in reporting order.
pub const ALL_RULES: [Rule; 7] = [
    Rule::WallClock,
    Rule::ThreadSpawn,
    Rule::FileIo,
    Rule::UnorderedIter,
    Rule::RwsetCoverage,
    Rule::HotPathAlloc,
    Rule::StaleAllow,
];

impl Rule {
    /// The stable kebab-case id.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::FileIo => "file-io",
            Rule::UnorderedIter => "unordered-iter",
            Rule::RwsetCoverage => "rwset-coverage",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::StaleAllow => "stale-allow",
        }
    }

    /// Parses a kebab-case id back into a rule.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation: a rule, a location, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// What went wrong, specific enough to act on.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(rule: Rule, path: &str, line: u32, message: impl Into<String>) -> Self {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The outcome of a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// All surviving findings, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files analyzed (after skips).
    pub files_scanned: usize,
    /// Number of suppressions honored (inline markers + allowlist
    /// entries that matched at least one finding).
    pub suppressions: usize,
}

impl Report {
    /// `true` when the workspace is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} suppression(s) honored, {} violation(s)\n",
            self.files_scanned,
            self.suppressions,
            self.findings.len()
        ));
        out
    }

    /// Renders the findings as a JSON array of
    /// `{"rule","path","line","message"}` objects — the machine-readable
    /// surface CI annotations consume.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(f.rule.id()),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str(if self.findings.is_empty() { "]\n" } else { "\n]\n" });
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("nope"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_render_shape() {
        let mut report = Report::default();
        report
            .findings
            .push(Finding::new(Rule::WallClock, "a/b.rs", 3, "msg"));
        let json = report.render_json();
        assert!(json.contains("\"rule\":\"wall-clock\""));
        assert!(json.contains("\"path\":\"a/b.rs\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }
}
