//! Throughput of the deterministic simulator itself: virtual-time
//! cluster runs per second, with and without fault schedules. This is
//! the budget that decides how many seeds an `explore-seeds` CI sweep
//! can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use parblock_sim::{plan_for_seed, ExploreConfig};
use parblockchain::run_sim;

fn bench_simexplore(c: &mut Criterion) {
    let mut group = c.benchmark_group("simexplore");
    group.sample_size(10);
    for (name, faults) in [("fault_free", false), ("crash_partition", true)] {
        let config = ExploreConfig {
            faults,
            ..ExploreConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("seed_run", name),
            &config,
            |b, config| {
                let mut seed = 0u64;
                b.iter(|| {
                    // Walk the seed space so the bench measures the
                    // sweep's mixed shapes, not one cached schedule.
                    seed = (seed + 1) % 64;
                    let plan = plan_for_seed(seed, config);
                    run_sim(&plan.config)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simexplore);
criterion_main!(benches);
