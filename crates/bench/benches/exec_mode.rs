//! Execution-mode benchmark (DESIGN.md §11): 1000-transaction blocks
//! pushed through the executor-bound OXII cluster under each
//! [`ExecutionMode`], at low and high contention. Pessimistic pays the
//! dependency-graph wait chains; optimistic pays validation plus any
//! aborted incarnations; hybrid picks per block by conflict density.
//! The `repro ablation-mode` table reports the same grid as committed
//! throughput with the speculation counters.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use parblockchain::{run_fixed, ClusterSpec, ExecutionMode, SystemKind};

fn bench_exec_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("oxii_exec_mode");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));
    for contention in [0.0, 0.9] {
        for mode in ExecutionMode::ALL {
            let mut spec = ClusterSpec::new(SystemKind::Oxii);
            spec.execution_mode = mode;
            spec.workload.contention = contention;
            spec.exec_pipeline_depth = 2;
            spec.block_cut = parblock_types::BlockCutConfig::with_max_txns(1_000);
            spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(500));
            spec.exec_pool = 8;
            spec.batch_max = 256;
            spec.topology.intra = Duration::from_millis(2);
            let label = format!("{mode}/contention_{contention}");
            group.bench_with_input(BenchmarkId::new("mode", label), &spec, |b, spec| {
                b.iter(|| {
                    let report = run_fixed(spec, 1_000, 30_000.0, Duration::from_secs(60));
                    assert_eq!(report.committed, 1_000);
                    report.window
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exec_mode);
criterion_main!(benches);
