//! Criterion micro-bench of the saturation harness itself: one
//! virtual-time sweep step below and one past the cost-model knee. The
//! sim leg is deterministic, so this times the harness + simulator (the
//! schedule generation, measurement windowing, and percentile math),
//! not host noise — a regression here means the sweep machinery got
//! slower, not the cluster.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use parblock_types::{ArrivalProcess, BlockCutConfig, ExecutionCosts};
use parblockchain::{saturate_sim, ClusterSpec, SaturateConfig, SystemKind};

fn sweep_config(rate: f64) -> SaturateConfig {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.block_cut = BlockCutConfig {
        max_txns: 25,
        max_bytes: usize::MAX,
        max_wait: Duration::from_millis(10),
    };
    // Full contention + 500 µs/tx: a hard 2 000 tps per-chain capacity,
    // so the two rates below sit on either side of the knee.
    spec.costs = ExecutionCosts::per_tx(Duration::from_micros(500));
    spec.workload.contention = 1.0;
    spec.seed = 42;
    let mut config = SaturateConfig::new(spec, vec![rate]);
    config.arrival = ArrivalProcess::Poisson;
    config.duration = Duration::from_millis(400);
    config.warmup = Duration::from_millis(100);
    config.cooldown = Duration::from_millis(50);
    config.drain = Duration::from_millis(200);
    config
}

fn bench_saturate_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturate_sim_step");
    group.sample_size(10);
    for rate in [800.0, 8_000.0] {
        let config = sweep_config(rate);
        group.bench_with_input(
            BenchmarkId::from_parameter(rate as u64),
            &config,
            |b, config| {
                b.iter(|| {
                    let outcome = saturate_sim(config);
                    assert_eq!(outcome.points.len(), 1);
                    outcome.points[0].measured_committed
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_saturate_sim);
criterion_main!(benches);
