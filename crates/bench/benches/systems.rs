//! End-to-end system benchmarks: one short run per paradigm at a
//! moderate load, confirming the OXII > XOV > OX ordering that every
//! figure builds on. The full figure sweeps live in the `repro` binary
//! (Criterion's repeated sampling is too expensive for multi-second
//! cluster runs).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use parblockchain::{run, ClusterSpec, LoadSpec, SystemKind};

fn bench_systems(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_600ms_run");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    for system in [SystemKind::Ox, SystemKind::Xov, SystemKind::Oxii] {
        for contention in [0u32, 80] {
            let mut spec = ClusterSpec::new(system);
            spec.block_cut = parblock_types::BlockCutConfig::with_max_txns(50);
            spec.workload.contention = f64::from(contention) / 100.0;
            let load = LoadSpec {
                rate_tps: 1_000.0,
                duration: Duration::from_millis(400),
                drain: Duration::from_millis(200),
                ..LoadSpec::default()
            };
            group.bench_with_input(
                BenchmarkId::new(system.to_string(), contention),
                &(spec, load),
                |b, (spec, load)| {
                    b.iter(|| {
                        let report = run(spec, load);
                        assert!(report.committed > 0);
                        report.committed
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_systems);
criterion_main!(benches);
