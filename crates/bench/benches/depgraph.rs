//! Micro-benchmarks of dependency-graph construction — the cost behind
//! the Fig 5 throughput rolloff (graph generation grows with block size)
//! and the single- vs multi-version ablation.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use parblock_depgraph::{DependencyGraph, DependencyMode, ExecutionLayers, StreamingBuilder};
use parblock_types::{Block, BlockNumber, Hash32};
use parblock_workload::{WorkloadConfig, WorkloadGen};

fn block_of(size: usize, contention: f64) -> Block {
    let mut gen = WorkloadGen::new(WorkloadConfig {
        contention,
        block_size: size,
        ..WorkloadConfig::default()
    });
    Block::new(BlockNumber(1), Hash32::ZERO, gen.window())
}

fn bench_build_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("depgraph_build_by_block_size");
    for size in [10usize, 100, 200, 500, 1000] {
        let block = block_of(size, 0.2);
        group.bench_with_input(BenchmarkId::new("full", size), &block, |b, blk| {
            b.iter(|| DependencyGraph::build(blk, DependencyMode::Full));
        });
        group.bench_with_input(BenchmarkId::new("reduced", size), &block, |b, blk| {
            b.iter(|| DependencyGraph::build(blk, DependencyMode::Reduced));
        });
    }
    group.finish();
}

/// Batch vs streaming construction at Fig 5 block sizes, `Full` mode —
/// the `ablation-streaming` microcosm. `batch_full` is the O(n²)
/// rebuild the orderer used to pay between cut and `NEWBLOCK`;
/// `streaming_total` is the same work amortised over the stream
/// (observe × n + finish); `streaming_cut` is what actually remains on
/// the ordering critical path at cut time — `finish` alone, O(pending).
fn bench_batch_vs_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("depgraph_batch_vs_streaming");
    for size in [10usize, 50, 100, 200, 400, 700, 1000] {
        let block = block_of(size, 0.2);
        group.bench_with_input(BenchmarkId::new("batch_full", size), &block, |b, blk| {
            b.iter(|| DependencyGraph::build(blk, DependencyMode::Full));
        });
        group.bench_with_input(
            BenchmarkId::new("streaming_total", size),
            &block,
            |b, blk| {
                b.iter(|| {
                    let mut builder = StreamingBuilder::new(DependencyMode::Full);
                    for tx in blk.transactions() {
                        builder.observe(tx);
                    }
                    builder.finish()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming_cut", size),
            &block,
            |b, blk| {
                b.iter_batched(
                    || {
                        let mut builder = StreamingBuilder::new(DependencyMode::Full);
                        for tx in blk.transactions() {
                            builder.observe(tx);
                        }
                        builder
                    },
                    |mut builder| builder.finish(),
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_build_by_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("depgraph_build_by_contention");
    for pct in [0u32, 20, 80, 100] {
        let block = block_of(200, f64::from(pct) / 100.0);
        group.bench_with_input(BenchmarkId::new("reduced", pct), &block, |b, blk| {
            b.iter(|| DependencyGraph::build(blk, DependencyMode::Reduced));
        });
        group.bench_with_input(BenchmarkId::new("multi_version", pct), &block, |b, blk| {
            b.iter(|| DependencyGraph::build(blk, DependencyMode::MultiVersion));
        });
    }
    group.finish();
}

fn bench_layers(c: &mut Criterion) {
    let block = block_of(200, 0.8);
    let graph = DependencyGraph::build(&block, DependencyMode::Reduced);
    c.bench_function("execution_layers_200tx", |b| {
        b.iter(|| ExecutionLayers::compute(&graph));
    });
}

fn bench_op_graph(c: &mut Criterion) {
    use parblock_depgraph::OpGraph;
    let block = block_of(200, 0.8);
    c.bench_function("op_graph_build_200tx", |b| {
        b.iter(|| OpGraph::build(&block));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build_by_size, bench_batch_vs_streaming, bench_build_by_contention, bench_layers, bench_op_graph
}
criterion_main!(benches);
