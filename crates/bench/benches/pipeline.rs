//! Pipeline-depth benchmark: a fixed transaction count pushed through an
//! OXII cluster whose executor is the bottleneck, at
//! `exec_pipeline_depth` 1 / 2 / 4. Wall-clock per run falls as depth
//! lets block `n + 1` execute under block `n`'s commit tail; the
//! `repro ablation-pipeline` table reports the same effect as committed
//! throughput with stall/occupancy metrics.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use parblockchain::{run_fixed, ClusterSpec, SystemKind};

fn bench_pipeline_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("oxii_pipeline_depth");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));
    for depth in [1usize, 2, 4] {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        spec.exec_pipeline_depth = depth;
        spec.block_cut = parblock_types::BlockCutConfig::with_max_txns(100);
        spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(500));
        spec.exec_pool = 8;
        spec.batch_max = 256;
        spec.topology.intra = Duration::from_millis(2);
        group.bench_with_input(BenchmarkId::new("depth", depth), &spec, |b, spec| {
            b.iter(|| {
                let report = run_fixed(spec, 1_000, 30_000.0, Duration::from_secs(60));
                assert_eq!(report.committed, 1_000);
                report.window
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_depth);
criterion_main!(benches);
