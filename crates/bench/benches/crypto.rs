//! Crypto micro-benchmarks: the per-message costs that block batching
//! amortizes (§III-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use parblock_crypto::{hmac_sha256, merkle_root, sha256, KeyRegistry, SignerId};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(d));
        });
    }
    group.finish();
}

fn bench_hmac_sign_verify(c: &mut Criterion) {
    let registry = KeyRegistry::deterministic(4);
    let message = vec![0x5au8; 256];
    c.bench_function("hmac_sha256_256B", |b| {
        b.iter(|| hmac_sha256(b"key", &message));
    });
    c.bench_function("sign_256B", |b| {
        b.iter(|| registry.sign(SignerId(1), &message));
    });
    let sig = registry.sign(SignerId(1), &message);
    c.bench_function("verify_256B", |b| {
        b.iter(|| registry.verify(SignerId(1), &message, &sig));
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_root");
    for leaves in [16usize, 200, 1000] {
        let digests: Vec<_> = (0..leaves).map(|i| sha256(&[i as u8])).collect();
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &digests, |b, d| {
            b.iter(|| merkle_root(d));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_sha256, bench_hmac_sign_verify, bench_merkle
}
criterion_main!(benches);
