//! The `repro recover` demonstration: kill a durable cluster mid-block,
//! recover it from disk, and verify the resumed run is byte-equal to an
//! uninterrupted reference (DESIGN.md §9).

use std::path::{Path, PathBuf};
use std::time::Duration;

use parblockchain::{
    run_fixed, run_fixed_from, run_fixed_with_faults, ClusterSpec, DurabilityMode, SystemKind,
};

use crate::table::Table;

const COUNT: usize = 400;
const BLOCK_TXNS: usize = 25;

fn spec(data_dir: &Path) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.block_cut = parblock_types::BlockCutConfig {
        max_txns: BLOCK_TXNS,
        max_bytes: usize::MAX,
        max_wait: Duration::from_secs(5),
    };
    spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(100));
    spec.topology.intra = Duration::from_micros(100);
    spec.exec_pool = 4;
    spec.workload.contention = 0.5;
    spec.capture_state = true;
    spec.durability = DurabilityMode::on_disk(data_dir);
    spec.durability_config = parblock_types::DurabilityConfig {
        flush_interval: 16,
        checkpoint_interval: 4,
    };
    spec
}

fn hex_prefix(hash: Option<parblock_types::Hash32>) -> String {
    hash.map_or_else(|| "-".to_string(), |h| h.to_hex()[..12].to_string())
}

/// Runs the kill → reconcile → recover → resume sequence under
/// `data_dir` (a fresh subdirectory is used per invocation) and returns
/// the phase-by-phase report. The final row states whether ledger head
/// and state digest are byte-equal to the uninterrupted reference.
///
/// # Panics
///
/// Panics if store reconciliation fails or the recovered run diverges —
/// this is a verification tool; divergence is a bug, not a data point.
#[must_use]
pub fn recover_demo(data_dir: &Path) -> Table {
    let mut table = Table::new([
        "phase",
        "committed",
        "blocks",
        "ledger_head",
        "state_digest",
        "replayed",
    ]);
    let reference_dir = data_dir.join("reference");
    let cluster_dir = data_dir.join("cluster");
    let _ = std::fs::remove_dir_all(&reference_dir);
    let _ = std::fs::remove_dir_all(&cluster_dir);

    // Phase 0: uninterrupted reference.
    let ref_spec = spec(&reference_dir);
    let reference = run_fixed(&ref_spec, COUNT, 4_000.0, Duration::from_secs(60));
    assert_eq!(
        reference.committed, COUNT as u64,
        "reference run incomplete: {reference:?}"
    );
    table.row([
        "reference".into(),
        reference.committed.to_string(),
        reference.blocks.to_string(),
        hex_prefix(reference.ledger_head),
        hex_prefix(reference.state_digest),
        "-".into(),
    ]);

    // Phase 1: identical workload, every node killed mid-run.
    let cluster_spec = spec(&cluster_dir);
    let all: Vec<_> = cluster_spec
        .orderer_ids()
        .into_iter()
        .chain(cluster_spec.peer_ids())
        .collect();
    let killed = run_fixed_with_faults(
        &cluster_spec,
        COUNT,
        4_000.0,
        Duration::from_secs(3),
        move |faults| {
            std::thread::sleep(Duration::from_millis(50));
            for &node in &all {
                faults.crash(node);
            }
        },
    );
    table.row([
        "killed mid-run".into(),
        killed.committed.to_string(),
        killed.blocks.to_string(),
        hex_prefix(killed.ledger_head),
        hex_prefix(killed.state_digest),
        "-".into(),
    ]);

    // Phase 2: startup state transfer to one consistent watermark.
    let peers: Vec<u32> = cluster_spec.peer_ids().iter().map(|n| n.0).collect();
    let orderers: Vec<u32> = cluster_spec.orderer_ids().iter().map(|n| n.0).collect();
    let watermark = parblock_store::reconcile_cluster(
        &cluster_dir,
        &peers,
        &orderers,
        cluster_spec.durability_config,
    )
    .expect("reconcile cluster stores");
    let skip = watermark.0 as usize * BLOCK_TXNS;

    // Phase 3: recover from disk and resume the deterministic workload.
    let resumed = run_fixed_from(&cluster_spec, skip, COUNT, 4_000.0, Duration::from_secs(60));
    table.row([
        format!("recovered @ block {}", watermark.0),
        resumed.committed.to_string(),
        resumed.blocks.to_string(),
        hex_prefix(resumed.ledger_head),
        hex_prefix(resumed.state_digest),
        resumed.recovery_replay_len.to_string(),
    ]);

    let heads_match = resumed.ledger_head == reference.ledger_head;
    let digests_match = resumed.state_digest == reference.state_digest;
    let verdict = if heads_match && digests_match {
        "byte-equal"
    } else {
        "DIVERGED"
    };
    table.row([
        "verdict",
        verdict,
        "-",
        if heads_match { "match" } else { "MISMATCH" },
        if digests_match { "match" } else { "MISMATCH" },
        "-",
    ]);
    assert!(
        heads_match && digests_match,
        "recovered run diverged from the reference"
    );
    table
}

/// The default data directory for `repro recover`.
#[must_use]
pub fn default_data_dir() -> PathBuf {
    std::env::temp_dir().join(format!("parblock-recover-{}", std::process::id()))
}
