//! `repro` — regenerates the tables/figures of the ParBlockchain
//! evaluation (§V).
//!
//! ```sh
//! repro fig5                 # Fig 5(a)+(b): block-size sweep
//! repro fig6 --contention 20 # Fig 6: one contention level (0|20|80|100)
//! repro fig6                 # Fig 6(a)-(d): all four levels
//! repro fig7 --move clients  # Fig 7: one moved group
//! repro fig7                 # Fig 7(a)-(d): all four groups
//! repro ablation-commit      # Algorithm 2 vs per-tx commit messages
//! repro ablation-mv          # single- vs multi-version graphs
//! repro ablation-streaming   # streaming vs batch graph construction
//! repro ablation-pipeline    # cross-block execution pipeline vs block barrier
//! repro ablation-durability  # in-memory vs on-disk (WAL+fsync) execution
//! repro ablation-mode        # pessimistic vs optimistic (Block-STM) vs hybrid
//! repro recover              # kill a durable cluster, recover from disk, verify digests
//! repro recover --data-dir D # same, persisting under D instead of a tempdir
//! repro explore --seeds 200  # deterministic simulation: sweep 200 seeds with
//!                            # crash+partition fault schedules, check all four
//!                            # oracles (+ pinned regression seeds)
//! repro explore --seed 17    # replay one seed twice, assert bit-reproducibility
//! repro explore --no-faults  # pure schedule exploration, faults disabled
//! repro lint                 # workspace static analysis: rwset coverage +
//!                            # determinism lints (exit 1 on any violation)
//! repro lint --json          # machine-readable findings for CI annotations
//! repro saturate             # open-loop saturation sweep: rate-vs-latency
//!                            # curve with honest percentiles + detected knee
//! repro saturate --sim       # same sweep in virtual time (bit-reproducible)
//! repro saturate --rates 500,2000,8000 --arrival poisson --json
//!                            # custom schedule; --json also writes
//!                            # bench_results/BENCH_saturate.json
//! repro trace                # per-transaction lifecycle breakdown:
//!                            # stage-gap percentile table + artifacts
//! repro trace --sim --seed 7 # virtual-time leg: byte-reproducible
//!                            # BENCH_trace.json + Perfetto-loadable
//!                            # BENCH_trace_events.json
//! repro all                  # everything
//! repro all --full           # everything, longer measurement points
//! ```
//!
//! Results print to stdout and are written as CSV under `bench_results/`.

use parblock_bench::{
    ablation_commit_batching, ablation_durability, ablation_mode, ablation_mv_graph,
    ablation_pipeline, ablation_streaming, default_data_dir, default_seed_file, explore_one,
    explore_sweep, fig5_block_size, fig6_contention, fig7_geo, knee_summary, load_seed_file,
    check_knee_baseline, parse_rates, recover_demo, run_saturate, run_trace, saturate_table,
    trace_table, write_saturate_json, write_trace_artifacts, ExperimentScale, SaturateOptions, Table,
    TraceOptions,
};
use parblock_types::ArrivalProcess;
use parblockchain::MovedGroup;

fn emit(name: &str, table: &Table) {
    println!("== {name} ==");
    println!("{}", table.render());
    let path = format!("bench_results/{name}.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("(csv written to {path})\n"),
        Err(e) => eprintln!("(csv write failed: {e})\n"),
    }
}

fn run_fig5(scale: ExperimentScale) {
    emit("fig5_block_size", &fig5_block_size(scale));
}

fn run_fig6(level: Option<u32>, scale: ExperimentScale) {
    let levels: Vec<u32> = match level {
        Some(l) => vec![l],
        None => vec![0, 20, 80, 100],
    };
    for l in levels {
        let table = fig6_contention(f64::from(l) / 100.0, scale);
        emit(&format!("fig6_contention_{l}"), &table);
    }
}

fn run_fig7(moved: Option<MovedGroup>, scale: ExperimentScale) {
    let groups = match moved {
        Some(g) => vec![g],
        None => vec![
            MovedGroup::Clients,
            MovedGroup::Orderers,
            MovedGroup::Executors,
            MovedGroup::NonExecutors,
        ],
    };
    for group in groups {
        let name = match group {
            MovedGroup::Clients => "fig7a_clients",
            MovedGroup::Orderers => "fig7b_orderers",
            MovedGroup::Executors => "fig7c_executors",
            MovedGroup::NonExecutors => "fig7d_nonexecutors",
        };
        emit(name, &fig7_geo(group, scale));
    }
}

fn run_saturate_cmd(args: &[String], scale: ExperimentScale) {
    let arg_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mut options = SaturateOptions {
        scale,
        ..SaturateOptions::default()
    };
    if let Some(raw) = arg_value("--rates") {
        match parse_rates(&raw) {
            Some(rates) => options.rates = rates,
            None => {
                eprintln!("saturate: --rates wants comma-separated positive tps, got {raw:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(raw) = arg_value("--arrival") {
        match ArrivalProcess::parse(&raw) {
            Some(arrival) => options.arrival = arrival,
            None => {
                eprintln!("saturate: --arrival wants uniform|poisson|burst, got {raw:?}");
                std::process::exit(2);
            }
        }
    }
    options.sim = args.iter().any(|a| a == "--sim");
    options.on_disk = args.iter().any(|a| a == "--on-disk");
    if let Some(seed) = arg_value("--seed").and_then(|v| v.parse().ok()) {
        options.seed = seed;
    }
    if let Some(level) = arg_value("--contention").and_then(|v| v.parse::<u32>().ok()) {
        options.contention = f64::from(level.min(100)) / 100.0;
    }
    if let Some(cap) = arg_value("--cap").and_then(|v| v.parse().ok()) {
        options.max_outstanding = Some(cap);
    }
    let outcome = run_saturate(&options);
    emit("saturate", &saturate_table(&outcome));
    println!("{}", knee_summary(&outcome, &options));
    if args.iter().any(|a| a == "--json") {
        match write_saturate_json(&outcome, &options) {
            Ok(path) => println!("(json written to {})", path.display()),
            Err(e) => {
                eprintln!("saturate: json write failed: {e}");
                std::process::exit(1);
            }
        }
    }
    // Performance ratchet: diff the detected knee against a committed
    // baseline artifact; a >10% regression fails the run (CI gate).
    if let Some(baseline_path) = arg_value("--check-baseline") {
        // lint:allow(file-io) — reads the committed knee-baseline artifact
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("saturate: cannot read baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        };
        match check_knee_baseline(&outcome, &baseline) {
            Ok(msg) => println!("baseline check: {msg}"),
            Err(msg) => {
                eprintln!("saturate: baseline check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}

fn run_trace_cmd(args: &[String], scale: ExperimentScale) {
    let arg_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mut options = TraceOptions {
        scale,
        ..TraceOptions::default()
    };
    options.sim = args.iter().any(|a| a == "--sim");
    options.on_disk = args.iter().any(|a| a == "--on-disk");
    if let Some(seed) = arg_value("--seed").and_then(|v| v.parse().ok()) {
        options.seed = seed;
    }
    if let Some(rate) = arg_value("--rate").and_then(|v| v.parse::<f64>().ok()) {
        if rate > 0.0 {
            options.rate_tps = rate;
        }
    }
    if let Some(level) = arg_value("--contention").and_then(|v| v.parse::<u32>().ok()) {
        options.contention = f64::from(level.min(100)) / 100.0;
    }
    let report = run_trace(&options);
    emit("trace", &trace_table(&report));
    println!(
        "digest: {} ({} leg, seed {}, {} committed, {} traced)",
        report.digest(),
        if options.sim { "virtual-time" } else { "threaded" },
        options.seed,
        report.committed,
        report.trace.finished,
    );
    match write_trace_artifacts(&report, &options) {
        Ok((json, events)) => {
            println!("(json written to {})", json.display());
            println!("(trace events written to {} — load in Perfetto)", events.display());
        }
        Err(e) => {
            eprintln!("trace: artifact write failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_move(s: &str) -> Option<MovedGroup> {
    match s {
        "clients" => Some(MovedGroup::Clients),
        "orderers" => Some(MovedGroup::Orderers),
        "executors" => Some(MovedGroup::Executors),
        "nonexecutors" | "non-executors" => Some(MovedGroup::NonExecutors),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::Full
    } else {
        ExperimentScale::Quick
    };
    let arg_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let command = args.first().map(String::as_str).unwrap_or("all");
    match command {
        "fig5" => run_fig5(scale),
        "fig6" => {
            let level = arg_value("--contention").and_then(|v| v.parse().ok());
            run_fig6(level, scale);
        }
        "fig7" => {
            let moved = arg_value("--move").and_then(|v| parse_move(&v));
            run_fig7(moved, scale);
        }
        "ablation-commit" => emit("ablation_commit_batching", &ablation_commit_batching(scale)),
        "ablation-mv" => emit("ablation_mv_graph", &ablation_mv_graph()),
        "ablation-streaming" => emit("ablation_streaming", &ablation_streaming(scale)),
        "ablation-pipeline" => emit("ablation_pipeline", &ablation_pipeline(scale)),
        "ablation-durability" => emit("ablation_durability", &ablation_durability(scale)),
        "ablation-mode" => emit("ablation_mode", &ablation_mode(scale)),
        "explore" => {
            let mut config = parblock_sim::ExploreConfig {
                faults: !args.iter().any(|a| a == "--no-faults"),
                ..parblock_sim::ExploreConfig::default()
            };
            if let Some(count) = arg_value("--count").and_then(|v| v.parse().ok()) {
                config.count = count;
            }
            let seed_file = arg_value("--seed-file")
                .map_or_else(default_seed_file, std::path::PathBuf::from);
            let (table, passed) = match arg_value("--seed").and_then(|v| v.parse().ok()) {
                Some(seed) => explore_one(seed, &config),
                None => {
                    let seeds = arg_value("--seeds")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(200);
                    let pinned = load_seed_file(&seed_file);
                    if !pinned.is_empty() {
                        println!(
                            "(replaying {} pinned regression seed(s) from {})",
                            pinned.len(),
                            seed_file.display()
                        );
                    }
                    explore_sweep(seeds, &pinned, &config)
                }
            };
            emit("explore", &table);
            if !passed {
                eprintln!("explore: oracle violations found (see above)");
                std::process::exit(1);
            }
        }
        "saturate" => run_saturate_cmd(&args, scale),
        "trace" => run_trace_cmd(&args, scale),
        "recover" => {
            let data_dir = arg_value("--data-dir")
                .map_or_else(default_data_dir, std::path::PathBuf::from);
            println!("(cluster stores under {})", data_dir.display());
            emit("recover", &recover_demo(&data_dir));
        }
        "lint" => {
            let cwd = std::env::current_dir().expect("cwd");
            let Some(root) = parblock_lint::find_workspace_root(&cwd) else {
                eprintln!("lint: no workspace root found above {}", cwd.display());
                std::process::exit(2);
            };
            let report = match parblock_lint::run_workspace(&root) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("lint: {e}");
                    std::process::exit(2);
                }
            };
            if args.iter().any(|a| a == "--json") {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if !report.is_clean() {
                std::process::exit(1);
            }
        }
        "all" => {
            run_fig5(scale);
            run_fig6(None, scale);
            run_fig7(None, scale);
            emit("ablation_commit_batching", &ablation_commit_batching(scale));
            emit("ablation_mv_graph", &ablation_mv_graph());
            emit("ablation_streaming", &ablation_streaming(scale));
            emit("ablation_pipeline", &ablation_pipeline(scale));
            emit("ablation_durability", &ablation_durability(scale));
            emit("ablation_mode", &ablation_mode(scale));
            emit("recover", &recover_demo(&default_data_dir()));
            run_saturate_cmd(&args, scale);
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!("usage: repro [fig5|fig6|fig7|ablation-commit|ablation-mv|ablation-streaming|ablation-pipeline|ablation-durability|ablation-mode|recover|explore|saturate|trace|lint|all] [--contention N] [--move GROUP] [--data-dir DIR] [--full] [--seeds N] [--seed K] [--seed-file PATH] [--count N] [--no-faults] [--rates R,R,...] [--rate R] [--arrival uniform|poisson|burst] [--sim] [--on-disk] [--cap N] [--json] [--check-baseline PATH]");
            std::process::exit(2);
        }
    }
}
