//! The `repro saturate` subcommand: open-loop saturation sweeps
//! (DESIGN.md §13) rendered as a rate-vs-latency table, CSV, and a
//! machine-readable JSON artifact for CI trend tracking.
//!
//! The threaded leg measures the real cluster on this host; the `--sim`
//! leg runs the identical sweep in virtual time, where the curve is a
//! pure function of the seed (the CI smoke job uses that leg so the
//! artifact is stable across runners).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use parblock_types::{ArrivalProcess, BlockCutConfig, ExecutionCosts};
use parblockchain::{
    saturate, saturate_sim, ClusterSpec, DurabilityMode, SaturateConfig, SaturateOutcome,
    SystemKind,
};

use crate::experiments::ExperimentScale;
use crate::table::Table;

/// Where the JSON artifact lands (next to the CSVs).
pub const JSON_ARTIFACT: &str = "bench_results/BENCH_saturate.json";

/// CLI-shaped options for one saturation sweep.
#[derive(Debug, Clone)]
pub struct SaturateOptions {
    /// Offered rates (tps), in sweep order.
    pub rates: Vec<f64>,
    /// Arrival process of every step.
    pub arrival: ArrivalProcess,
    /// Run the deterministic virtual-time leg instead of the threaded
    /// cluster.
    pub sim: bool,
    /// Persist every node through `parblock_store` into a scratch
    /// directory (wiped afterwards) instead of in-memory.
    pub on_disk: bool,
    /// Workload contention in `[0, 1]` (the fig 6 axis). Full contention
    /// chains each block, which is what gives the sim leg a hard
    /// cost-model capacity to find.
    pub contention: f64,
    /// Cluster seed — the sim leg's curve is a pure function of it.
    pub seed: u64,
    /// Optional admission cap on in-flight transactions.
    pub max_outstanding: Option<u64>,
    /// Step length: `Quick` is a 1 s step, `Full` the 2 s default.
    pub scale: ExperimentScale,
}

impl Default for SaturateOptions {
    fn default() -> Self {
        SaturateOptions {
            rates: vec![250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0],
            arrival: ArrivalProcess::Uniform,
            sim: false,
            on_disk: false,
            contention: 0.2,
            seed: 42,
            max_outstanding: None,
            scale: ExperimentScale::Quick,
        }
    }
}

impl SaturateOptions {
    fn config(&self, data_dir: Option<&Path>) -> SaturateConfig {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        spec.block_cut = BlockCutConfig::with_max_txns(100);
        spec.costs = ExecutionCosts::per_tx(Duration::from_micros(500));
        spec.workload.contention = self.contention;
        spec.seed = self.seed;
        // Lifecycle tracing rides along on every sweep step, so each
        // point of the JSON artifact carries the per-stage breakdown —
        // which stage saturates first as the offered rate climbs.
        spec.trace = parblockchain::TraceConfig::on();
        spec.durability = match data_dir {
            Some(dir) => DurabilityMode::OnDisk {
                data_dir: dir.to_path_buf(),
                fresh: true,
            },
            None => DurabilityMode::InMemory,
        };
        let mut config = SaturateConfig::new(spec, self.rates.clone());
        config.arrival = self.arrival;
        config.max_outstanding = self.max_outstanding;
        if matches!(self.scale, ExperimentScale::Quick) {
            config.duration = Duration::from_millis(1_000);
            config.warmup = Duration::from_millis(250);
            config.cooldown = Duration::from_millis(150);
            config.drain = Duration::from_millis(500);
        }
        config
    }
}

/// Runs the sweep the options describe and returns the outcome.
///
/// # Panics
///
/// Panics when the step shape leaves no measured span (not reachable
/// from the CLI, which only picks between the two built-in shapes).
#[must_use]
pub fn run_saturate(options: &SaturateOptions) -> SaturateOutcome {
    let scratch: Option<PathBuf> = options.on_disk.then(|| {
        std::env::temp_dir().join(format!("parblock-saturate-{}", std::process::id()))
    });
    let config = options.config(scratch.as_deref());
    let outcome = if options.sim {
        saturate_sim(&config)
    } else {
        saturate(&config)
    };
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(dir);
    }
    outcome
}

/// Renders the sweep as the `repro` table/CSV shape: one row per step,
/// percentiles in milliseconds, the driver self-checks alongside.
#[must_use]
pub fn saturate_table(outcome: &SaturateOutcome) -> Table {
    let mut table = Table::new([
        "offered_tps",
        "achieved_tps",
        "measured_submitted",
        "measured_committed",
        "outstanding",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "driver_overruns",
        "driver_max_lag_ms",
        "admission_shed",
    ]);
    let ms = |d: Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
    for point in &outcome.points {
        table.row([
            format!("{:.0}", point.offered_tps),
            format!("{:.1}", point.achieved_tps),
            point.measured_submitted.to_string(),
            point.measured_committed.to_string(),
            point.outstanding.to_string(),
            ms(point.p50),
            ms(point.p99),
            ms(point.p999),
            point.driver_overruns.to_string(),
            ms(point.driver_max_lag),
            point.admission_shed.to_string(),
        ]);
    }
    table
}

/// One line summarising the detected knee.
#[must_use]
pub fn knee_summary(outcome: &SaturateOutcome, options: &SaturateOptions) -> String {
    match outcome.knee_tps {
        Some(knee) => format!(
            "knee: {knee:.0} tps ({} leg, {} arrivals, seed {})",
            if options.sim { "virtual-time" } else { "threaded" },
            options.arrival,
            options.seed
        ),
        None => "knee: none — every step was past saturation".to_string(),
    }
}

/// Serializes the sweep as the `BENCH_saturate.json` artifact: sweep
/// metadata, the knee, and every point with integral-microsecond
/// percentiles (no float round-tripping in CI diffs).
#[must_use]
pub fn saturate_json(outcome: &SaturateOutcome, options: &SaturateOptions) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"saturate\",");
    let _ = writeln!(
        out,
        "  \"leg\": \"{}\",",
        if options.sim { "sim" } else { "threaded" }
    );
    let _ = writeln!(out, "  \"arrival\": \"{}\",", options.arrival);
    let _ = writeln!(out, "  \"seed\": {},", options.seed);
    let _ = writeln!(out, "  \"contention\": {:.2},", options.contention);
    let _ = writeln!(
        out,
        "  \"durability\": \"{}\",",
        if options.on_disk { "on-disk" } else { "in-memory" }
    );
    match outcome.knee_tps {
        Some(knee) => {
            let _ = writeln!(out, "  \"knee_tps\": {knee:.1},");
        }
        None => {
            let _ = writeln!(out, "  \"knee_tps\": null,");
        }
    }
    out.push_str("  \"points\": [\n");
    for (i, p) in outcome.points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"offered_tps\": {:.1}, \"achieved_tps\": {:.1}, \
             \"measured_submitted\": {}, \"measured_committed\": {}, \
             \"outstanding\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {}, \"driver_overruns\": {}, \
             \"driver_max_lag_us\": {}, \"admission_shed\": {}, \
             \"stages\": [",
            p.offered_tps,
            p.achieved_tps,
            p.measured_submitted,
            p.measured_committed,
            p.outstanding,
            p.p50.as_micros(),
            p.p99.as_micros(),
            p.p999.as_micros(),
            p.driver_overruns,
            p.driver_max_lag.as_micros(),
            p.admission_shed,
        );
        for (j, s) in p.stages.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"from\": \"{}\", \"to\": \"{}\", \"count\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}}}",
                if j == 0 { "" } else { ", " },
                s.from,
                s.to,
                s.count,
                s.p50.as_micros(),
                s.p99.as_micros(),
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < outcome.points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the JSON artifact to [`JSON_ARTIFACT`].
///
/// # Errors
///
/// Propagates I/O errors from creating `bench_results/` or the file.
pub fn write_saturate_json(outcome: &SaturateOutcome, options: &SaturateOptions) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(JSON_ARTIFACT);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, saturate_json(outcome, options))?;
    Ok(path)
}

/// Extracts the `"knee_tps"` field from a saturate JSON artifact.
/// Returns `None` when the field is `null` or absent.
#[must_use]
pub fn parse_knee_tps(json: &str) -> Option<f64> {
    let rest = json.split("\"knee_tps\":").nth(1)?;
    let raw = rest
        .trim_start()
        .split([',', '\n', '}'])
        .next()?
        .trim();
    raw.parse::<f64>().ok()
}

/// Maximum tolerated knee regression against the committed baseline.
pub const KNEE_REGRESSION_TOLERANCE: f64 = 0.10;

/// Diffs the sweep's detected knee against a committed baseline
/// artifact (the `saturate-smoke` CI gate): the run fails when the knee
/// drops more than [`KNEE_REGRESSION_TOLERANCE`] below the baseline's.
/// The sim leg is a pure function of the seed, so on CI this is an
/// exact performance ratchet, not a noisy threshold.
///
/// # Errors
///
/// Returns a human-readable failure when the baseline is unusable, the
/// sweep found no knee while the baseline has one, or the knee
/// regressed beyond tolerance.
pub fn check_knee_baseline(
    outcome: &SaturateOutcome,
    baseline_json: &str,
) -> Result<String, String> {
    let Some(baseline) = parse_knee_tps(baseline_json) else {
        return Err("baseline artifact has no knee_tps to compare against".into());
    };
    let Some(current) = outcome.knee_tps else {
        return Err(format!(
            "sweep detected no knee (every step past saturation) — baseline expects {baseline:.0} tps"
        ));
    };
    let floor = baseline * (1.0 - KNEE_REGRESSION_TOLERANCE);
    if current < floor {
        return Err(format!(
            "knee regressed: {current:.0} tps vs baseline {baseline:.0} tps \
             (floor {floor:.0}, tolerance {:.0}%)",
            KNEE_REGRESSION_TOLERANCE * 100.0
        ));
    }
    Ok(format!(
        "knee {current:.0} tps vs baseline {baseline:.0} tps — within tolerance{}",
        if current > baseline {
            " (improved: consider refreshing the baseline)"
        } else {
            ""
        }
    ))
}

/// Parses the `--rates` CLI spelling: comma-separated positive tps
/// values, e.g. `--rates 500,1000,4000`.
#[must_use]
pub fn parse_rates(raw: &str) -> Option<Vec<f64>> {
    let rates: Option<Vec<f64>> = raw
        .split(',')
        .map(|s| s.trim().parse::<f64>().ok().filter(|r| *r > 0.0))
        .collect();
    rates.filter(|r| !r.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_outcome() -> (SaturateOutcome, SaturateOptions) {
        let options = SaturateOptions {
            rates: vec![400.0, 1_600.0],
            sim: true,
            contention: 1.0,
            scale: ExperimentScale::Quick,
            ..SaturateOptions::default()
        };
        (run_saturate(&options), options)
    }

    #[test]
    fn sim_sweep_renders_table_and_json() {
        let (outcome, options) = tiny_outcome();
        let table = saturate_table(&outcome);
        assert_eq!(table.len(), outcome.points.len());
        assert!(!table.is_empty());
        let json = saturate_json(&outcome, &options);
        assert!(json.contains("\"bench\": \"saturate\""));
        assert!(json.contains("\"leg\": \"sim\""));
        assert!(json.contains("\"offered_tps\": 400.0"));
        // Tracing rides along: every point embeds its stage breakdown.
        assert!(outcome.points.iter().all(|p| !p.stages.is_empty()));
        assert!(json.contains("\"stages\": ["));
        assert!(json.contains("\"from\": \"submitted\""));
        // Balanced braces/brackets — the artifact must stay parseable.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(knee_summary(&outcome, &options).starts_with("knee:"));
    }

    #[test]
    fn sim_leg_is_reproducible_end_to_end() {
        let (a, options) = tiny_outcome();
        let b = run_saturate(&options);
        assert_eq!(
            saturate_json(&a, &options),
            saturate_json(&b, &options),
            "the JSON artifact of a seeded sim sweep must be bit-stable"
        );
    }

    #[test]
    fn knee_parses_from_artifact_json() {
        assert_eq!(parse_knee_tps("{\n  \"knee_tps\": 1600.0,\n}"), Some(1600.0));
        assert_eq!(parse_knee_tps("{\"knee_tps\": null,}"), None);
        assert_eq!(parse_knee_tps("{\"bench\": \"saturate\"}"), None);
    }

    #[test]
    fn knee_baseline_gate_passes_and_fails() {
        let (outcome, _) = tiny_outcome();
        let knee = outcome.knee_tps.expect("contention-1.0 sweep has a knee");

        // Equal baseline: pass.
        let same = format!("{{\"knee_tps\": {knee:.1}}}");
        assert!(check_knee_baseline(&outcome, &same).is_ok());

        // Knee just inside tolerance of a slightly better baseline: pass.
        let above = format!("{{\"knee_tps\": {:.1}}}", knee * 1.05);
        assert!(check_knee_baseline(&outcome, &above).is_ok());

        // Baseline >10% above the detected knee: fail.
        let far_above = format!("{{\"knee_tps\": {:.1}}}", knee * 1.2);
        let err = check_knee_baseline(&outcome, &far_above).unwrap_err();
        assert!(err.contains("regressed"), "{err}");

        // Unusable baseline: fail loudly, not silently pass.
        assert!(check_knee_baseline(&outcome, "{\"knee_tps\": null}").is_err());
        assert!(check_knee_baseline(&outcome, "{}").is_err());
    }

    #[test]
    fn rates_parse_and_reject_garbage() {
        assert_eq!(parse_rates("500,1000"), Some(vec![500.0, 1_000.0]));
        assert_eq!(parse_rates(" 250 , 4000 "), Some(vec![250.0, 4_000.0]));
        assert_eq!(parse_rates(""), None);
        assert_eq!(parse_rates("abc"), None);
        assert_eq!(parse_rates("100,-5"), None);
    }
}
