//! The `repro explore` command: seeded schedule exploration with fault
//! injection and the four serializability/convergence/exactly-once/
//! recovery oracles (DESIGN.md §10).
//!
//! * `repro explore --seeds N` sweeps seeds `0..N` **plus** every pinned
//!   regression seed from `crates/bench/seeds/regression-seeds.txt`.
//! * `repro explore --seed K` replays one seed twice and asserts the two
//!   runs are bit-identical (`RunReport` digests), then prints the
//!   oracle verdicts — the one-line repro the sweep prints on failure.
//!
//! Exit status is non-zero when any oracle fails, which is what the CI
//! `explore-seeds` job gates on.

use std::path::Path;

use parblock_sim::{run_seed, run_seed_twice, ExploreConfig, SeedReport};
use parblockchain::ExecutionMode;

use crate::table::Table;

/// Loads pinned regression seeds (one integer per line, `#` comments).
/// A missing file is an empty pin set, so the command works from any
/// working directory.
#[must_use]
pub fn load_seed_file(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.parse().ok())
        .collect()
}

/// The default pinned-seed file location: repo-relative when run from
/// the repo root, otherwise resolved against this crate's source tree
/// (`CARGO_MANIFEST_DIR`), so invoking the binary from elsewhere never
/// silently skips the pinned regression corpus.
#[must_use]
pub fn default_seed_file() -> std::path::PathBuf {
    let relative = std::path::PathBuf::from("crates/bench/seeds/regression-seeds.txt");
    if relative.exists() {
        return relative;
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("seeds/regression-seeds.txt")
}

fn verdict_row(table: &mut Table, report: &SeedReport) {
    table.row([
        report.seed.to_string(),
        if report.passed() { "PASS".into() } else { "FAIL".into() },
        report.blocks.to_string(),
        report.events.to_string(),
        report.report_digest.to_hex()[..12].to_string(),
        report.description.clone(),
    ]);
}

/// A sweep at least this large must have sampled every execution mode;
/// smaller ones (quick local runs) are exempt from the coverage check.
const MODE_COVERAGE_FLOOR: usize = 30;

/// Runs the sweep: seeds `0..seeds` plus `pinned`, deduplicated,
/// checking all four oracles per seed. Sweeps of at least
/// `MODE_COVERAGE_FLOOR` seeds additionally fail if any
/// [`ExecutionMode`] went unsampled. Returns `(table, all_passed)`.
#[must_use]
pub fn explore_sweep(seeds: u64, pinned: &[u64], config: &ExploreConfig) -> (Table, bool) {
    let mut all: Vec<u64> = (0..seeds).collect();
    for &pin in pinned {
        if !all.contains(&pin) {
            all.push(pin);
        }
    }
    let swept = all.len();
    let mut table = Table::new(["seed", "verdict", "blocks", "events", "report_digest", "schedule"]);
    let mut failures = Vec::new();
    let mut sampled: Vec<ExecutionMode> = Vec::new();
    for seed in all {
        let report = run_seed(seed, config);
        if !report.passed() {
            failures.push((report.seed, report.failures.clone(), report.repro_command()));
        }
        if !sampled.contains(&report.mode) {
            sampled.push(report.mode);
        }
        verdict_row(&mut table, &report);
    }
    for (seed, why, repro) in &failures {
        eprintln!("seed {seed} FAILED:");
        for failure in why {
            eprintln!("  {failure}");
        }
        eprintln!("  reproduce: {repro}");
    }
    let mut passed = failures.is_empty();
    if swept >= MODE_COVERAGE_FLOOR {
        for mode in ExecutionMode::ALL {
            if !sampled.contains(&mode) {
                eprintln!(
                    "sweep of {swept} seeds never sampled execution mode \
                     '{mode}': the {mode} engine ran under no oracle"
                );
                passed = false;
            }
        }
    }
    (table, passed)
}

/// Replays one seed twice, asserting bit-reproducibility, and prints the
/// oracle verdicts. Returns `(table, passed)`.
///
/// # Panics
///
/// Panics when the two runs of the same seed are not bit-identical —
/// that is a determinism bug in the simulator itself, which everything
/// else here rests on.
#[must_use]
pub fn explore_one(seed: u64, config: &ExploreConfig) -> (Table, bool) {
    let (report, first, second) = run_seed_twice(seed, config);
    assert_eq!(
        first.report.digest(),
        second.report.digest(),
        "seed {seed} is not bit-reproducible: the scheduler leaked \
         nondeterminism (events {} vs {})",
        first.events,
        second.events
    );
    let mut table = Table::new(["seed", "verdict", "blocks", "events", "report_digest", "schedule"]);
    verdict_row(&mut table, &report);
    if report.passed() {
        println!(
            "seed {seed}: all four oracles passed; two runs bit-identical \
             (digest {})",
            first.report.digest().to_hex()
        );
    } else {
        for failure in &report.failures {
            eprintln!("seed {seed}: {failure}");
        }
    }
    (table, report.passed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_file_parsing_ignores_comments_and_garbage() {
        let dir = parblock_store::testutil::TempDir::new("seedfile");
        let path = dir.path().join("seeds.txt");
        std::fs::write(&path, "# pinned\n3\n\n17\nnot-a-seed\n 42 \n").unwrap();
        assert_eq!(load_seed_file(&path), vec![3, 17, 42]);
        assert!(load_seed_file(&dir.path().join("missing.txt")).is_empty());
    }

    #[test]
    fn single_seed_replay_is_reproducible_and_passes() {
        let config = ExploreConfig {
            count: 50,
            ..ExploreConfig::default()
        };
        let (table, passed) = explore_one(1, &config);
        assert!(passed, "{}", table.render());
    }
}
