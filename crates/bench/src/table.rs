//! Plain-text table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table that can also be written as CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    #[must_use]
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Serializes as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV next to stdout output.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or file.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["a", "metric"]);
        t.row(["1", "2"]);
        t.row(["100", "3"]);
        let rendered = t.render();
        assert!(rendered.contains("a  metric"));
        assert!(rendered.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
