//! The figure-level experiments (§V of the paper).

use std::time::Duration;

use parblockchain::{
    run, run_fixed, ClusterSpec, CommitFlush, ExecutionMode, GraphConstruction, LoadSpec,
    MovedGroup, RunReport, SystemKind,
};
use parblock_depgraph::{ConflictStats, DependencyGraph, DependencyMode};
use parblock_types::{Block, BlockCutConfig, BlockNumber, ExecutionCosts, Hash32};
use parblock_workload::{WorkloadConfig, WorkloadGen};

use crate::table::Table;

/// How long each measurement point runs. `quick` keeps the full suite in
/// CI-sized budgets; `full` tightens the noise for the record run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Short points (~1 s each).
    Quick,
    /// Longer points (~3 s each).
    Full,
}

impl ExperimentScale {
    fn load(self, rate_tps: f64) -> LoadSpec {
        match self {
            ExperimentScale::Quick => LoadSpec {
                rate_tps,
                duration: Duration::from_millis(900),
                drain: Duration::from_millis(600),
                ..LoadSpec::default()
            },
            ExperimentScale::Full => LoadSpec {
                rate_tps,
                duration: Duration::from_millis(2500),
                drain: Duration::from_millis(900),
                ..LoadSpec::default()
            },
        }
    }
}

/// One measured point of a latency-vs-throughput curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Offered load (tx/s).
    pub offered_tps: f64,
    /// Achieved committed throughput (tx/s).
    pub throughput_tps: f64,
    /// Mean end-to-end latency (ms).
    pub latency_ms: f64,
    /// Abort fraction.
    pub abort_rate: f64,
}

impl Point {
    fn from_report(offered: f64, report: &RunReport) -> Self {
        Point {
            offered_tps: offered,
            throughput_tps: report.throughput_tps(),
            latency_ms: report.avg_latency().as_secs_f64() * 1e3,
            abort_rate: report.abort_rate(),
        }
    }
}

/// Measures one (spec, rate) point.
#[must_use]
pub fn measure_point(spec: &ClusterSpec, rate_tps: f64, scale: ExperimentScale) -> Point {
    let report = run(spec, &scale.load(rate_tps));
    Point::from_report(rate_tps, &report)
}

/// Finds the peak throughput of a configuration by walking a rate ladder.
///
/// The paper reports "the peak throughput and the corresponding average
/// end-to-end latency … just below saturation": accordingly, among the
/// points within 7 % of the maximum achieved throughput, the one with the
/// lowest latency is returned (the highest rate usually sits *past*
/// saturation with queueing-inflated latency).
#[must_use]
pub fn peak_search(spec: &ClusterSpec, rates: &[f64], scale: ExperimentScale) -> Point {
    let mut points: Vec<Point> = Vec::new();
    for &rate in rates {
        let point = measure_point(spec, rate, scale);
        let saturated = point.throughput_tps < 0.55 * rate;
        points.push(point);
        if saturated {
            break; // further rates only grow the queues
        }
    }
    let max_tps = points
        .iter()
        .map(|p| p.throughput_tps)
        .fold(0.0f64, f64::max);
    points
        .into_iter()
        .filter(|p| p.throughput_tps >= 0.93 * max_tps)
        .min_by(|a, b| a.latency_ms.total_cmp(&b.latency_ms))
        .expect("at least one rate")
}

fn spec_for(system: SystemKind, contention: f64, cross_app: bool) -> ClusterSpec {
    let mut spec = ClusterSpec::new(system);
    spec.workload.contention = contention;
    spec.workload.cross_app = cross_app;
    spec
}

/// The rate ladders used by the sweeps, per system. OX saturates early
/// (sequential execution); OXII climbs furthest.
fn ladder(system: SystemKind) -> Vec<f64> {
    match system {
        SystemKind::Ox => vec![500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0],
        SystemKind::Xov => vec![500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0],
        SystemKind::Oxii => vec![1_000.0, 2_000.0, 4_000.0, 8_000.0, 12_000.0],
    }
}

/// **Fig 5**: peak throughput and latency vs block size (10 → 1000),
/// no contention, all three systems.
///
/// OXII uses the paper's literal pipeline here: O(n²) pairwise graph
/// construction ([`DependencyMode::Full`]) rebuilt at cut time
/// ([`GraphConstruction::Batch`]) — the quadratic generation cost is
/// exactly what produces the paper's throughput rolloff past
/// ~200 tx/block. (This reproduction's optimizations — the `Reduced`
/// builder and streaming construction — remove most of that rolloff;
/// see [`ablation_streaming`] and the `depgraph` Criterion bench.)
#[must_use]
pub fn fig5_block_size(scale: ExperimentScale) -> Table {
    let mut table = Table::new([
        "block_size",
        "system",
        "peak_tps",
        "latency_ms",
    ]);
    let sizes = [10usize, 50, 100, 200, 400, 700, 1000];
    for &size in &sizes {
        for system in [SystemKind::Ox, SystemKind::Xov, SystemKind::Oxii] {
            let mut spec = spec_for(system, 0.0, false);
            spec.block_cut = BlockCutConfig::with_max_txns(size);
            spec.depgraph_mode = DependencyMode::Full;
            spec.graph_construction = GraphConstruction::Batch;
            let point = peak_search(&spec, &ladder(system), scale);
            table.row([
                size.to_string(),
                system.to_string(),
                format!("{:.0}", point.throughput_tps),
                format!("{:.2}", point.latency_ms),
            ]);
        }
    }
    table
}

/// **Fig 6**: latency vs throughput for increasing contention.
/// `contention` is the workload dial (0.0, 0.2, 0.8, 1.0); the OXII*
/// dashed line (cross-application conflicts) is emitted as system
/// `OXII*`.
///
/// OXII runs this reproduction's default pipeline (`Reduced` graphs,
/// streaming construction), not the paper's literal O(n²)
/// rebuild-at-cut — contention effects, not orderer graph cost, are the
/// subject here; [`fig5_block_size`] pins the paper pipeline and
/// [`ablation_streaming`] quantifies the difference.
#[must_use]
pub fn fig6_contention(contention: f64, scale: ExperimentScale) -> Table {
    let mut table = Table::new([
        "system",
        "offered_tps",
        "throughput_tps",
        "latency_ms",
        "abort_rate",
    ]);
    let mut lines: Vec<(String, ClusterSpec)> = vec![
        ("OX".into(), spec_for(SystemKind::Ox, contention, false)),
        ("XOV".into(), spec_for(SystemKind::Xov, contention, false)),
        ("OXII".into(), spec_for(SystemKind::Oxii, contention, false)),
    ];
    if contention > 0.0 {
        lines.push((
            "OXII*".into(),
            spec_for(SystemKind::Oxii, contention, true),
        ));
    }
    for (label, spec) in &lines {
        let system = spec.system;
        for &rate in &ladder(system) {
            let point = measure_point(spec, rate, scale);
            table.row([
                label.clone(),
                format!("{:.0}", point.offered_tps),
                format!("{:.0}", point.throughput_tps),
                format!("{:.2}", point.latency_ms),
                format!("{:.3}", point.abort_rate),
            ]);
            // Stop a line once it is fully saturated (achieved < 55 % of
            // offered): further points only melt the mailboxes.
            if point.throughput_tps < 0.55 * rate {
                break;
            }
        }
    }
    table
}

/// **Fig 7**: latency vs throughput with one node group in a far
/// datacenter, no contention. Fig 7(a)=Clients, (b)=Orderers,
/// (c)=Executors, (d)=NonExecutors; OX is omitted for (c)/(d) exactly as
/// in the paper (it has no executor/non-executor distinction).
///
/// Like [`fig6_contention`], OXII runs the reproduction's default
/// pipeline (`Reduced` graphs, streaming construction): the subject is
/// wide-area placement, not orderer graph cost.
#[must_use]
pub fn fig7_geo(moved: MovedGroup, scale: ExperimentScale) -> Table {
    let mut table = Table::new([
        "system",
        "offered_tps",
        "throughput_tps",
        "latency_ms",
    ]);
    let systems: Vec<SystemKind> = match moved {
        MovedGroup::Clients | MovedGroup::Orderers => {
            vec![SystemKind::Ox, SystemKind::Xov, SystemKind::Oxii]
        }
        MovedGroup::Executors | MovedGroup::NonExecutors => {
            vec![SystemKind::Xov, SystemKind::Oxii]
        }
    };
    for system in systems {
        let mut spec = spec_for(system, 0.0, false);
        spec.topology.moved = Some(moved);
        for &rate in &ladder(system) {
            let point = measure_point(&spec, rate, scale);
            table.row([
                system.to_string(),
                format!("{:.0}", point.offered_tps),
                format!("{:.0}", point.throughput_tps),
                format!("{:.2}", point.latency_ms),
            ]);
            if point.throughput_tps < 0.55 * rate {
                break;
            }
        }
    }
    table
}

/// **Ablation**: Algorithm 2's cut-based COMMIT multicast vs the naive
/// per-transaction multicast the paper rejects (§IV-C), measured as
/// network messages per committed transaction under cross-application
/// contention.
#[must_use]
pub fn ablation_commit_batching(scale: ExperimentScale) -> Table {
    let mut table = Table::new([
        "strategy",
        "committed",
        "messages",
        "msgs_per_tx",
        "throughput_tps",
    ]);
    for (label, flush) in [
        ("cut (Algorithm 2)", CommitFlush::Cut),
        ("per-transaction", CommitFlush::PerTransaction),
    ] {
        let mut spec = spec_for(SystemKind::Oxii, 0.5, true);
        spec.commit_flush = flush;
        let report = run(&spec, &scale.load(2_000.0));
        let per_tx = if report.committed == 0 {
            0.0
        } else {
            report.messages as f64 / report.committed as f64
        };
        table.row([
            label.to_string(),
            report.committed.to_string(),
            report.messages.to_string(),
            format!("{per_tx:.1}"),
            format!("{:.0}", report.throughput_tps()),
        ]);
    }
    table
}

/// **Ablation**: streaming vs batch dependency-graph construction at the
/// orderer, across Fig 5 block sizes under the paper's literal O(n²)
/// [`DependencyMode::Full`] pipeline.
///
/// `batch` rebuilds the graph between cutting a block and multicasting
/// `NEWBLOCK` — the orderer-side load behind the Fig 5 rolloff
/// ("generating the dependency graph … increases the load on the
/// orderers", §IV-B). `streaming` amortises the same work over the
/// delivered transaction stream, so cut-time emission is O(pending) and
/// the rolloff flattens as blocks grow.
#[must_use]
pub fn ablation_streaming(scale: ExperimentScale) -> Table {
    let mut table = Table::new([
        "block_size",
        "construction",
        "peak_tps",
        "latency_ms",
    ]);
    let sizes = [100usize, 400, 1000];
    for &size in &sizes {
        for (label, construction) in [
            ("batch", GraphConstruction::Batch),
            ("streaming", GraphConstruction::Streaming),
        ] {
            let mut spec = spec_for(SystemKind::Oxii, 0.0, false);
            spec.block_cut = BlockCutConfig::with_max_txns(size);
            spec.depgraph_mode = DependencyMode::Full;
            spec.graph_construction = construction;
            let point = peak_search(&spec, &ladder(SystemKind::Oxii), scale);
            table.row([
                size.to_string(),
                label.to_string(),
                format!("{:.0}", point.throughput_tps),
                format!("{:.2}", point.latency_ms),
            ]);
        }
    }
    table
}

/// **Ablation**: the executor's cross-block execution pipeline
/// (DESIGN.md §7) vs the paper's strict block-at-a-time barrier
/// (`exec_pipeline_depth = 1`), under the accounting workload.
///
/// The cluster is tuned so the executor — not the orderer — is the
/// bottleneck (heavier per-transaction cost, fatter links so the
/// end-of-block COMMIT exchange is a visible tail): at depth 1 every
/// block pays `execute + commit-tail` serially, while at depth ≥ 2 the
/// next block's independent transactions execute under the previous
/// block's commit tail. A fixed transaction count is pushed at a rate
/// above the depth-1 service capacity; committed throughput over the
/// submit→last-commit window is the measure, and the boundary-stall /
/// occupancy metrics show the mechanism. Rising contention shrinks the
/// win: cross-block conflicts chain blocks back together.
#[must_use]
pub fn ablation_pipeline(scale: ExperimentScale) -> Table {
    let mut table = Table::new([
        "contention",
        "depth",
        "throughput_tps",
        "latency_ms",
        "stall_ms",
        "max_occupancy",
    ]);
    let count = match scale {
        ExperimentScale::Quick => 3_000,
        ExperimentScale::Full => 9_000,
    };
    for contention in [0.0, 0.5, 0.9] {
        for depth in [1usize, 2, 4] {
            let mut spec = spec_for(SystemKind::Oxii, contention, false);
            spec.exec_pipeline_depth = depth;
            spec.block_cut = BlockCutConfig::with_max_txns(100);
            spec.costs = ExecutionCosts::per_tx(Duration::from_micros(500));
            spec.exec_pool = 8;
            spec.batch_max = 256;
            spec.topology.intra = Duration::from_millis(2);
            let report = run_fixed(&spec, count, 30_000.0, Duration::from_secs(120));
            let max_occupancy = report.max_occupancy();
            table.row([
                format!("{:.0}%", contention * 100.0),
                depth.to_string(),
                format!("{:.0}", report.throughput_tps()),
                format!("{:.2}", report.avg_latency().as_secs_f64() * 1e3),
                format!("{:.2}", report.boundary_stall.as_secs_f64() * 1e3),
                max_occupancy.to_string(),
            ]);
        }
    }
    table
}

/// **Ablation**: execution mode (DESIGN.md §11) — the paper's
/// pessimistic dependency-graph scheduler vs the optimistic (Block-STM)
/// engine vs the per-block hybrid, on the executor-bound cluster of
/// [`ablation_pipeline`] across contention 0 / 0.5 / 0.9.
///
/// All three modes commit identical ledgers (pinned by
/// `tests/mode_equivalence.rs`); this table shows what they *cost*:
/// throughput, latency, and the speculation counters. At contention 0
/// optimistic speculation is nearly free (every validation passes); at
/// 0.9 clobbered reads abort and re-execute, and the hybrid's conflict
/// density heuristic falls back to the pessimistic scheduler.
#[must_use]
pub fn ablation_mode(scale: ExperimentScale) -> Table {
    let mut table = Table::new([
        "contention",
        "mode",
        "throughput_tps",
        "latency_ms",
        "validations",
        "aborts",
        "re_execs",
    ]);
    let count = match scale {
        ExperimentScale::Quick => 3_000,
        ExperimentScale::Full => 9_000,
    };
    for contention in [0.0, 0.5, 0.9] {
        for mode in ExecutionMode::ALL {
            let mut spec = spec_for(SystemKind::Oxii, contention, false);
            spec.execution_mode = mode;
            spec.exec_pipeline_depth = 2;
            spec.block_cut = BlockCutConfig::with_max_txns(100);
            spec.costs = ExecutionCosts::per_tx(Duration::from_micros(500));
            spec.exec_pool = 8;
            spec.batch_max = 256;
            spec.topology.intra = Duration::from_millis(2);
            let report = run_fixed(&spec, count, 30_000.0, Duration::from_secs(120));
            table.row([
                format!("{:.0}%", contention * 100.0),
                mode.to_string(),
                format!("{:.0}", report.throughput_tps()),
                format!("{:.2}", report.avg_latency().as_secs_f64() * 1e3),
                report.validation_passes.to_string(),
                report.aborts.to_string(),
                report.re_executions.to_string(),
            ]);
        }
    }
    table
}

/// **Ablation**: durability overhead — the executor-bound pipeline
/// cluster of [`ablation_pipeline`] run with durability off
/// (`InMemory`), with the default group-commit cadence, and with an
/// aggressive fsync-per-8-records cadence. Reports throughput, latency,
/// and the new durability counters (WAL volume, fsync barriers,
/// checkpoints), quantifying what persist-before-COMMIT costs on the
/// hot path.
#[must_use]
pub fn ablation_durability(scale: ExperimentScale) -> Table {
    let mut table = Table::new([
        "durability",
        "flush_interval",
        "throughput_tps",
        "latency_ms",
        "wal_mb",
        "fsyncs",
        "checkpoints",
    ]);
    let count = match scale {
        ExperimentScale::Quick => 3_000,
        ExperimentScale::Full => 9_000,
    };
    let base = std::env::temp_dir().join(format!("parblock-abl-dur-{}", std::process::id()));
    let variants: [(&str, Option<usize>); 3] =
        [("in-memory", None), ("on-disk", Some(64)), ("on-disk", Some(8))];
    for (i, (label, flush)) in variants.into_iter().enumerate() {
        let mut spec = spec_for(SystemKind::Oxii, 0.0, false);
        spec.exec_pipeline_depth = 2;
        spec.block_cut = BlockCutConfig::with_max_txns(100);
        spec.costs = ExecutionCosts::per_tx(Duration::from_micros(500));
        spec.exec_pool = 8;
        spec.batch_max = 256;
        spec.topology.intra = Duration::from_millis(2);
        spec.durability = match flush {
            None => parblockchain::DurabilityMode::InMemory,
            Some(flush_interval) => {
                spec.durability_config.flush_interval = flush_interval;
                parblockchain::DurabilityMode::OnDisk {
                    data_dir: base.join(format!("variant-{i}")),
                    fresh: true,
                }
            }
        };
        let report = run_fixed(&spec, count, 30_000.0, Duration::from_secs(120));
        table.row([
            label.to_string(),
            flush.map_or_else(|| "-".to_string(), |f| f.to_string()),
            format!("{:.0}", report.throughput_tps()),
            format!("{:.2}", report.avg_latency().as_secs_f64() * 1e3),
            format!("{:.2}", report.wal_bytes_written as f64 / 1e6),
            report.fsync_count.to_string(),
            report.checkpoint_count.to_string(),
        ]);
    }
    let _ = std::fs::remove_dir_all(&base);
    table
}

/// **Ablation**: single-version vs multi-version dependency rules
/// (§III-A's multi-version adaptation): edge count and critical path on
/// identical blocks. Pure graph analysis — no cluster needed.
///
/// The accounting workload's conflicts are all read-modify-write, where
/// every pair also has a W→R dependency and MV prunes nothing; the MV
/// advantage shows on blind writes and pure reads. This ablation
/// therefore measures two workloads: the paper's RMW transfers, and a
/// blind-write/reader mix (`KvOp::Put` / read-only `KvOp::Mix`) over the
/// same hot keys.
#[must_use]
pub fn ablation_mv_graph() -> Table {
    use parblock_contracts::{KvContract, KvOp};
    use parblock_types::{AppId, ClientId, Key};

    let mut table = Table::new([
        "workload",
        "contention",
        "mode",
        "edges",
        "critical_path",
    ]);
    let modes = [
        ("full", DependencyMode::Full),
        ("reduced", DependencyMode::Reduced),
        ("multi-version", DependencyMode::MultiVersion),
    ];

    // Paper workload: read-modify-write transfers.
    for contention in [0.2, 0.8, 1.0] {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            contention,
            block_size: 200,
            ..WorkloadConfig::default()
        });
        let block = Block::new(BlockNumber(1), Hash32::ZERO, gen.window());
        for (label, mode) in modes {
            let graph = DependencyGraph::build(&block, mode);
            let stats = ConflictStats::compute(&graph);
            table.row([
                "rmw-transfer".to_string(),
                format!("{:.0}%", contention * 100.0),
                label.to_string(),
                stats.edges.to_string(),
                stats.critical_path.to_string(),
            ]);
        }
    }

    // Blind-write / reader mix: `contention`·n transactions alternate
    // between blind writes of a hot key and pure reads of it.
    for contention in [0.2, 0.8, 1.0] {
        let contract = KvContract::new(AppId(0));
        let n = 200usize;
        let hot_txs = (contention * n as f64).round() as usize;
        let mut txs = Vec::with_capacity(n);
        for i in 0..n {
            let op = if i < hot_txs {
                if i % 2 == 0 {
                    KvOp::Put { key: Key(1), value: i as i64 }
                } else {
                    KvOp::Mix { reads: vec![Key(1)], writes: vec![Key(1000 + i as u64)] }
                }
            } else {
                KvOp::Put { key: Key(10_000 + i as u64), value: 0 }
            };
            txs.push(contract.transaction(ClientId(1), i as u64, &op));
        }
        let block = Block::new(BlockNumber(1), Hash32::ZERO, txs);
        for (label, mode) in modes {
            let graph = DependencyGraph::build(&block, mode);
            let stats = ConflictStats::compute(&graph);
            table.row([
                "blind-write/read".to_string(),
                format!("{:.0}%", contention * 100.0),
                label.to_string(),
                stats.edges.to_string(),
                stats.critical_path.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mv_ablation_shapes() {
        let table = ablation_mv_graph();
        assert_eq!(table.len(), 18); // 2 workloads × 3 contentions × 3 modes
        let csv = table.to_csv();
        assert!(csv.contains("multi-version"));
        assert!(csv.contains("blind-write/read"));
    }

    #[test]
    fn point_derives_from_report() {
        let report = RunReport {
            committed: 100,
            aborted: 100,
            blocks: 2,
            window: Duration::from_secs(1),
            latencies_us: vec![1000, 2000, 3000],
            messages: 42,
            ..RunReport::default()
        };
        let p = Point::from_report(500.0, &report);
        assert_eq!(p.offered_tps, 500.0);
        assert!((p.throughput_tps - 100.0).abs() < 1e-9);
        assert!((p.latency_ms - 2.0).abs() < 1e-9);
        assert!((p.abort_rate - 0.5).abs() < 1e-9);
    }
}
