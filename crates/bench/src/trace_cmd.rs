//! The `repro trace` subcommand: per-transaction lifecycle breakdowns
//! (DESIGN.md §14) rendered as a stage-gap table, a machine-readable
//! `BENCH_trace.json` artifact, and a Chrome trace-event export of the
//! sampled timelines (loadable in Perfetto / `chrome://tracing`).
//!
//! The threaded leg profiles the real cluster on this host; the `--sim`
//! leg runs the identical load in virtual time, where the whole trace —
//! every histogram bucket, every sampled timeline — is a pure function
//! of the seed and two runs produce byte-identical artifacts (the CI
//! trace-smoke job pins exactly that).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use parblock_types::{ArrivalProcess, BlockCutConfig, ExecutionCosts};
use parblock_workload::ArrivalGen;
use parblockchain::sim::{run_sim, SimConfig};
use parblockchain::{
    run, ClusterSpec, DurabilityMode, Histogram, LoadSpec, RunReport, Stage, SystemKind,
    TraceConfig,
};

use crate::experiments::ExperimentScale;
use crate::table::Table;

/// Where the JSON breakdown artifact lands (next to the CSVs).
pub const JSON_ARTIFACT: &str = "bench_results/BENCH_trace.json";
/// Where the Chrome trace-event export lands.
pub const EVENTS_ARTIFACT: &str = "bench_results/BENCH_trace_events.json";

/// CLI-shaped options for one traced run.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Offered rate (tps) of the traced run.
    pub rate_tps: f64,
    /// Run the deterministic virtual-time leg instead of the threaded
    /// cluster.
    pub sim: bool,
    /// Persist every node through `parblock_store` into a scratch
    /// directory (wiped afterwards) instead of in-memory.
    pub on_disk: bool,
    /// Workload contention in `[0, 1]`.
    pub contention: f64,
    /// Cluster seed — the sim leg's artifacts are a pure function of it.
    pub seed: u64,
    /// Run length: `Quick` is a 1 s window, `Full` 2 s.
    pub scale: ExperimentScale,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            rate_tps: 2_000.0,
            sim: false,
            on_disk: false,
            contention: 0.2,
            seed: 42,
            scale: ExperimentScale::Quick,
        }
    }
}

impl TraceOptions {
    fn duration(&self) -> Duration {
        match self.scale {
            ExperimentScale::Quick => Duration::from_millis(1_000),
            ExperimentScale::Full => Duration::from_secs(2),
        }
    }

    fn spec(&self, data_dir: Option<&Path>) -> ClusterSpec {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        spec.block_cut = BlockCutConfig::with_max_txns(100);
        spec.costs = ExecutionCosts::per_tx(Duration::from_micros(500));
        spec.workload.contention = self.contention;
        spec.seed = self.seed;
        spec.trace = TraceConfig::on();
        spec.durability = match data_dir {
            Some(dir) => DurabilityMode::OnDisk {
                data_dir: dir.to_path_buf(),
                fresh: true,
            },
            None => DurabilityMode::InMemory,
        };
        spec
    }
}

/// Runs the load the options describe, tracing enabled, and returns the
/// report (its `trace` field carries the lifecycle breakdown).
#[must_use]
pub fn run_trace(options: &TraceOptions) -> RunReport {
    let scratch: Option<PathBuf> = options
        .on_disk
        .then(|| std::env::temp_dir().join(format!("parblock-trace-{}", std::process::id())));
    let spec = options.spec(scratch.as_deref());
    let duration = options.duration();
    let drain = duration / 2;
    let report = if options.sim {
        // The sim leg submits exactly the arrivals of [0, duration) — the
        // same schedule the threaded driver would pace.
        let count = ArrivalGen::new(ArrivalProcess::Uniform, options.rate_tps, spec.seed)
            .take_until(duration)
            .len();
        let mut sim = SimConfig::new(spec, count, options.rate_tps);
        sim.virtual_deadline = duration + drain;
        run_sim(&sim).report
    } else {
        let load = LoadSpec {
            rate_tps: options.rate_tps,
            duration,
            drain,
            ..LoadSpec::default()
        };
        run(&spec, &load)
    };
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(dir);
    }
    report
}

fn us(ns: u64) -> u64 {
    ns / 1_000
}

/// Renders the lifecycle breakdown as the `repro` table/CSV shape: one
/// row per stage gap that any transaction crossed, percentiles in
/// microseconds, plus a `seal` row for the store's fsync barrier when
/// the run was durable.
#[must_use]
pub fn trace_table(report: &RunReport) -> Table {
    let mut table = Table::new(["stage_gap", "count", "p50_us", "p99_us", "p999_us", "mean_us"]);
    let mut row = |label: String, hist: &Histogram| {
        table.row([
            label,
            hist.count().to_string(),
            us(hist.percentile(0.50)).to_string(),
            us(hist.percentile(0.99)).to_string(),
            us(hist.percentile(0.999)).to_string(),
            us(hist.mean()).to_string(),
        ]);
    };
    for pair in &report.trace.pairs {
        row(format!("{}->{}", pair.from, pair.to), &pair.hist);
    }
    if !report.trace.seal.is_empty() {
        row("seal(block)".to_string(), &report.trace.seal);
    }
    table
}

fn hist_json(out: &mut String, hist: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"mean_us\": {}}}",
        hist.count(),
        us(hist.percentile(0.50)),
        us(hist.percentile(0.99)),
        us(hist.percentile(0.999)),
        us(hist.mean()),
    );
}

/// Serializes the breakdown as the `BENCH_trace.json` artifact: run
/// metadata, the report digest (two same-seed sim runs must produce
/// byte-identical files), and per-stage-gap percentile summaries.
#[must_use]
pub fn trace_json(report: &RunReport, options: &TraceOptions) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"trace\",");
    let _ = writeln!(
        out,
        "  \"leg\": \"{}\",",
        if options.sim { "sim" } else { "threaded" }
    );
    let _ = writeln!(out, "  \"seed\": {},", options.seed);
    let _ = writeln!(out, "  \"rate_tps\": {:.1},", options.rate_tps);
    let _ = writeln!(out, "  \"contention\": {:.2},", options.contention);
    let _ = writeln!(
        out,
        "  \"durability\": \"{}\",",
        if options.on_disk { "on-disk" } else { "in-memory" }
    );
    let _ = writeln!(out, "  \"digest\": \"{}\",", report.digest());
    let _ = writeln!(out, "  \"committed\": {},", report.committed);
    let _ = writeln!(out, "  \"aborted\": {},", report.aborted);
    let _ = writeln!(out, "  \"trace_finished\": {},", report.trace.finished);
    let _ = writeln!(out, "  \"trace_incomplete\": {},", report.trace.incomplete);
    let _ = writeln!(
        out,
        "  \"timelines_sampled\": {},",
        report.trace.timelines.len()
    );
    let _ = writeln!(
        out,
        "  \"timelines_dropped\": {},",
        report.trace.dropped_timelines
    );
    out.push_str("  \"stages\": [\n");
    for (i, pair) in report.trace.pairs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"from\": \"{}\", \"to\": \"{}\", \"summary\": ",
            pair.from, pair.to
        );
        hist_json(&mut out, &pair.hist);
        out.push('}');
        out.push_str(if i + 1 < report.trace.pairs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"seal\": ");
    hist_json(&mut out, &report.trace.seal);
    out.push_str("\n}\n");
    out
}

/// Serializes the sampled timelines in the Chrome trace-event format
/// (the `traceEvents` array): one complete (`"ph": "X"`) event per
/// crossed stage gap, one `tid` lane per sampled transaction. Load the
/// file in Perfetto or `chrome://tracing` to see per-transaction
/// lifecycle waterfalls.
#[must_use]
pub fn trace_events_json(report: &RunReport) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    for (tid, timeline) in report.trace.timelines.iter().enumerate() {
        // Walk consecutive *present* stages: a stage a transaction never
        // crossed (e.g. `validated` under the pessimistic engine) folds
        // into the surrounding gap, exactly like the histograms.
        let mut prev: Option<(Stage, u64)> = None;
        for (index, at) in timeline.stages.iter().enumerate() {
            let Some(at) = at else { continue };
            let stage = Stage::from_index(index).expect("slot index is a stage");
            if let Some((from, start)) = prev {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "  {{\"name\": \"{}->{}\", \"cat\": \"lifecycle\", \"ph\": \"X\", \
                     \"pid\": 1, \"tid\": {}, \"ts\": {}.{:03}, \"dur\": {}.{:03}, \
                     \"args\": {{\"client\": {}, \"client_ts\": {}}}}}",
                    from,
                    stage,
                    tid,
                    start / 1_000,
                    start % 1_000,
                    at.saturating_sub(start) / 1_000,
                    at.saturating_sub(start) % 1_000,
                    timeline.tx.client.0,
                    timeline.tx.client_ts,
                );
            }
            prev = Some((stage, *at));
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Writes both artifacts ([`JSON_ARTIFACT`] and [`EVENTS_ARTIFACT`]).
///
/// # Errors
///
/// Propagates I/O errors from creating `bench_results/` or the files.
pub fn write_trace_artifacts(
    report: &RunReport,
    options: &TraceOptions,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let json = PathBuf::from(JSON_ARTIFACT);
    if let Some(parent) = json.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&json, trace_json(report, options))?;
    let events = PathBuf::from(EVENTS_ARTIFACT);
    std::fs::write(&events, trace_events_json(report))?;
    Ok((json, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> TraceOptions {
        TraceOptions {
            rate_tps: 1_000.0,
            sim: true,
            contention: 1.0,
            ..TraceOptions::default()
        }
    }

    #[test]
    fn sim_trace_renders_table_and_artifacts() {
        let options = tiny_options();
        let report = run_trace(&options);
        assert!(report.committed > 0, "traced run must commit work");
        assert!(report.trace.finished > 0, "trace must see durable txns");
        let table = trace_table(&report);
        assert!(!table.is_empty(), "at least one stage gap crossed");
        let json = trace_json(&report, &options);
        assert!(json.contains("\"bench\": \"trace\""));
        assert!(json.contains("\"from\": \"submitted\""));
        assert!(json.contains("\"digest\": \""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let events = trace_events_json(&report);
        assert!(events.contains("\"traceEvents\""));
        assert!(events.contains("\"ph\": \"X\""));
        assert_eq!(events.matches('{').count(), events.matches('}').count());
    }

    #[test]
    fn sim_leg_is_byte_reproducible_end_to_end() {
        let options = tiny_options();
        let a = run_trace(&options);
        let b = run_trace(&options);
        assert_eq!(
            trace_json(&a, &options),
            trace_json(&b, &options),
            "same-seed sim traces must serialize identically"
        );
        assert_eq!(
            trace_events_json(&a),
            trace_events_json(&b),
            "sampled timelines must be deterministic too"
        );
    }
}
