//! Experiment runners regenerating every figure of the ParBlockchain
//! evaluation (§V). The `repro` binary is a thin CLI over this library;
//! the Criterion benches cover the micro-level ablations.
//!
//! Absolute numbers differ from the paper's EC2 cluster (this is a
//! single-host simulation with timed-wait cost models — see DESIGN.md
//! §3); the *shapes* are the reproduction target and are recorded in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod explore_cmd;
pub mod recover;
pub mod saturate_cmd;
pub mod table;
pub mod trace_cmd;

pub use experiments::{
    ablation_commit_batching, ablation_durability, ablation_mode, ablation_mv_graph,
    ablation_pipeline, ablation_streaming, fig5_block_size, fig6_contention, fig7_geo,
    measure_point, peak_search, ExperimentScale, Point,
};
pub use explore_cmd::{default_seed_file, explore_one, explore_sweep, load_seed_file};
pub use recover::{default_data_dir, recover_demo};
pub use saturate_cmd::{
    check_knee_baseline, knee_summary, parse_knee_tps, parse_rates, run_saturate, saturate_json,
    saturate_table, write_saturate_json,
    SaturateOptions,
};
pub use table::Table;
pub use trace_cmd::{
    run_trace, trace_events_json, trace_json, trace_table, write_trace_artifacts, TraceOptions,
};
